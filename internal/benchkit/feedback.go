package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/plancache"
)

// FeedbackEpoch is one pass of the feedback warm-up sweep over the
// workload: the mean relative cardinality and cost estimation errors of
// that pass (not cumulative — each epoch's mean is computed from
// snapshot deltas), plus the loop's drift and re-price activity so far.
type FeedbackEpoch struct {
	Epoch       int     `json:"epoch"`
	MeanCardErr float64 `json:"mean_card_err"`
	MeanCostErr float64 `json:"mean_cost_err"`
	DriftEvents int64   `json:"drift_events"`
	Reprices    int64   `json:"reprices"`
}

// FeedbackReport is the result of MeasureFeedback: the error trajectory
// of the adaptive cost model over repeated passes of a workload, and
// whether the answers stayed identical to a feedback-free answerer's.
type FeedbackReport struct {
	Database string          `json:"database"`
	Profile  string          `json:"profile"`
	Strategy string          `json:"strategy"`
	Epochs   []FeedbackEpoch `json:"epochs"`
	// CardImprovement and CostImprovement are first-epoch error divided
	// by last-epoch error (so 2 means the error halved over the sweep);
	// 0 when an epoch recorded no error of that kind.
	CardImprovement float64 `json:"card_improvement"`
	CostImprovement float64 `json:"cost_improvement"`
	// FinalCardErr is the last epoch's mean relative cardinality error.
	FinalCardErr float64 `json:"final_card_err"`
	// AnswersIdentical reports whether every query's answer set matched
	// the feedback-free baseline in every epoch (compared as canonical
	// sorted sets, since corrected estimates may legitimately change the
	// chosen cover and with it row order — never the set).
	AnswersIdentical bool `json:"answers_identical"`
}

// MeasureFeedback runs the feedback warm-up sweep: the LUBM workload
// answered with GCov through a plan cache and a feedback loop, repeated
// for the given number of epochs (at least 2), tracking how the mean
// relative estimation errors shrink as the loop recalibrates, and
// checking every answer against a feedback-free baseline.
func MeasureFeedback(sc Scale, epochs int) (*FeedbackReport, error) {
	if epochs < 2 {
		epochs = 2
	}
	db, err := BuildLUBM(sc)
	if err != nil {
		return nil, err
	}
	fb := feedback.New(feedback.Config{})
	pc := plancache.New(0)
	a := db.Answerer(engine.Native, core.Options{Feedback: fb, PlanCache: pc})
	base := db.Answerer(engine.Native, core.Options{})

	rep := &FeedbackReport{
		Database:         db.Name,
		Profile:          engine.Native.Name,
		Strategy:         string(core.GCov),
		AnswersIdentical: true,
	}

	// Baseline answer sets, canonicalized; queries the baseline cannot
	// answer (resource budgets) are skipped on both sides.
	want := make(map[int][]string, len(db.Encoded))
	for qi := range db.Encoded {
		ans, err := base.Answer(db.Encoded[qi], core.GCov)
		if err != nil {
			continue
		}
		want[qi] = canonicalRows(ans)
	}

	prev := fb.Snapshot()
	for epoch := 0; epoch < epochs; epoch++ {
		for qi := range db.Encoded {
			wantRows, ok := want[qi]
			if !ok {
				continue
			}
			ans, err := a.Answer(db.Encoded[qi], core.GCov)
			if err != nil {
				rep.AnswersIdentical = false
				continue
			}
			if !equalRows(canonicalRows(ans), wantRows) {
				rep.AnswersIdentical = false
			}
		}
		s := fb.Snapshot()
		e := FeedbackEpoch{
			Epoch:       epoch,
			DriftEvents: s.DriftEvents,
			Reprices:    pc.Snapshot().Reprices,
		}
		if n := s.CardErrorCount - prev.CardErrorCount; n > 0 {
			e.MeanCardErr = (s.CardErrorSum - prev.CardErrorSum) / float64(n)
		}
		if n := s.CostErrorCount - prev.CostErrorCount; n > 0 {
			e.MeanCostErr = (s.CostErrorSum - prev.CostErrorSum) / float64(n)
		}
		rep.Epochs = append(rep.Epochs, e)
		prev = s
	}

	first, last := rep.Epochs[0], rep.Epochs[len(rep.Epochs)-1]
	rep.FinalCardErr = last.MeanCardErr
	if first.MeanCardErr > 0 && last.MeanCardErr > 0 {
		rep.CardImprovement = first.MeanCardErr / last.MeanCardErr
	}
	if first.MeanCostErr > 0 && last.MeanCostErr > 0 {
		rep.CostImprovement = first.MeanCostErr / last.MeanCostErr
	}
	return rep, nil
}

// WriteText renders the sweep as a per-epoch table plus a summary line.
func (r *FeedbackReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Feedback warm-up sweep: %s, %s profile, %s\n", r.Database, r.Profile, r.Strategy); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-6s  %12s  %12s  %7s  %9s\n", "epoch", "card err", "cost err", "drifts", "re-prices")
	for _, e := range r.Epochs {
		fmt.Fprintf(w, "%-6d  %12.4f  %12.4f  %7d  %9d\n", e.Epoch, e.MeanCardErr, e.MeanCostErr, e.DriftEvents, e.Reprices)
	}
	_, err := fmt.Fprintf(w, "improvement: card %.2fx, cost %.2fx; answers identical: %v\n",
		r.CardImprovement, r.CostImprovement, r.AnswersIdentical)
	return err
}

// WriteJSON writes the sweep as indented JSON.
func (r *FeedbackReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// canonicalRows renders an answer as a sorted set of row strings.
func canonicalRows(ans *core.Answer) []string {
	if ans == nil || ans.Rel == nil {
		return nil
	}
	seen := make(map[string]struct{}, ans.Rel.Len())
	for _, row := range ans.Rel.Materialize() {
		seen[fmt.Sprint(row)] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
