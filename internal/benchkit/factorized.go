package benchkit

import (
	"fmt"
	"io"
	"reflect"
	"text/tabwriter"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sparql"
)

// FactorizedSpecs returns the cross-product-heavy queries of the
// factorized-answer experiment: BGPs whose join graphs decompose into
// independent components, so the answer set is a product the engine can
// hold factorized. They are deliberately *not* part of lubm.Queries() —
// the tracked workload and its regression gates stay untouched — but
// they use the same LUBM vocabulary and run against the same database.
func FactorizedSpecs() []Spec {
	const prolog = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
	return []Spec{
		{
			Name: "FX1",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ub:Professor .
				?y rdf:type ub:Department }`,
			Comment: "two-way product: professors (via subclass reformulation) x departments",
		},
		{
			Name: "FX2",
			Text: prolog + `SELECT ?x ?y ?z WHERE {
				?x rdf:type ub:Department .
				?y rdf:type ub:ResearchGroup .
				?z rdf:type ub:University }`,
			Comment: "three-way product: departments x research groups x universities",
		},
		{
			Name: "FX3",
			Text: prolog + `SELECT ?x ?d ?y WHERE {
				?x ub:worksFor ?d .
				?y rdf:type ub:GraduateCourse }`,
			Comment: "connected pair x independent component",
		},
		{
			Name: "FX4",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ub:GraduateStudent .
				?x ub:advisor ?p .
				?y rdf:type ub:Department }`,
			Comment: "control with a non-head variable inside one component",
		},
	}
}

// FactorizedOutcome is one query's measurement of the factorized answer
// representation against the flat baseline, after the equality gate
// (byte-identical expanded rows, identical engine metrics) has passed.
type FactorizedOutcome struct {
	Query    string `json:"query"`
	Strategy string `json:"strategy"`
	Rows     int    `json:"rows"`
	// Stored bytes of the answer representation; the flat figure is
	// rows x arity x 4.
	StoredBytesFactorized int64 `json:"stored_bytes_factorized"`
	StoredBytesFlat       int64 `json:"stored_bytes_flat"`
	// Bytes per answer under each representation, and their ratio
	// (flat / factorized; higher is better).
	BytesPerAnswerFactorized float64 `json:"bytes_per_answer_factorized"`
	BytesPerAnswerFlat       float64 `json:"bytes_per_answer_flat"`
	CompressionRatio         float64 `json:"compression_ratio"`
	// Warm-averaged evaluation times and the factorized answer rate.
	EvalNsFactorized int64   `json:"eval_ns_factorized"`
	EvalNsFlat       int64   `json:"eval_ns_flat"`
	AnswersPerSec    float64 `json:"answers_per_sec"`
}

// FactorizedSweep measures the factorized answer representation on this
// database: for each cross-product query it answers with factorization
// on and off, asserts the expanded rows are byte-identical and the
// engine metrics strictly equal (factorization must be invisible in
// everything but the footprint), and reports stored bytes per answer
// and the answer rate under both representations. w may be nil to skip
// the rendered table.
func (db *Database) FactorizedSweep(w io.Writer, warm int) ([]FactorizedOutcome, error) {
	if warm < 1 {
		warm = 3
	}
	const strat = core.UCQ
	fact := db.Answerer(engine.Native, core.Options{Parallelism: 1})
	flat := db.Answerer(engine.Native, core.Options{Parallelism: 1, NoFactorized: true})

	var tw *tabwriter.Writer
	if w != nil {
		fmt.Fprintf(w, "%s: factorized-answer sweep (strategy %s, %d warm runs)\n\n", db.Name, strat, warm)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "Query\tRows\tB/answer fact\tB/answer flat\tRatio\tEval fact\tEval flat\tAnswers/s\n")
	}
	var outs []FactorizedOutcome
	for _, spec := range FactorizedSpecs() {
		q, err := db.EncodeSpec(spec)
		if err != nil {
			return nil, err
		}
		ansFact, err := fact.Answer(q, strat)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s factorized: %w", spec.Name, err)
		}
		ansFlat, err := flat.Answer(q, strat)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s flat: %w", spec.Name, err)
		}
		if ansFact.Report.Metrics != ansFlat.Report.Metrics {
			return nil, fmt.Errorf("benchkit: %s: metrics diverge: factorized %+v, flat %+v",
				spec.Name, ansFact.Report.Metrics, ansFlat.Report.Metrics)
		}
		if !reflect.DeepEqual(ansFact.Rel.Materialize(), ansFlat.Rel.Materialize()) {
			return nil, fmt.Errorf("benchkit: %s: factorized expansion differs from flat rows", spec.Name)
		}

		evalFact, err := db.warmEval(fact, q, strat, warm)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s factorized warm runs: %w", spec.Name, err)
		}
		evalFlat, err := db.warmEval(flat, q, strat, warm)
		if err != nil {
			return nil, fmt.Errorf("benchkit: %s flat warm runs: %w", spec.Name, err)
		}

		rows := ansFact.Rel.Len()
		out := FactorizedOutcome{
			Query:                 spec.Name,
			Strategy:              string(strat),
			Rows:                  rows,
			StoredBytesFactorized: ansFact.Rel.StoredBytes(),
			StoredBytesFlat:       ansFlat.Rel.StoredBytes(),
			EvalNsFactorized:      evalFact.Nanoseconds(),
			EvalNsFlat:            evalFlat.Nanoseconds(),
		}
		if rows > 0 {
			out.BytesPerAnswerFactorized = float64(out.StoredBytesFactorized) / float64(rows)
			out.BytesPerAnswerFlat = float64(out.StoredBytesFlat) / float64(rows)
		}
		if out.StoredBytesFactorized > 0 {
			out.CompressionRatio = float64(out.StoredBytesFlat) / float64(out.StoredBytesFactorized)
		}
		if evalFact > 0 {
			out.AnswersPerSec = float64(rows) / evalFact.Seconds()
		}
		outs = append(outs, out)
		if tw != nil {
			fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.1fx\t%v\t%v\t%.0f\n",
				out.Query, out.Rows,
				out.BytesPerAnswerFactorized, out.BytesPerAnswerFlat, out.CompressionRatio,
				evalFact.Round(time.Microsecond), evalFlat.Round(time.Microsecond),
				out.AnswersPerSec)
		}
	}
	if tw != nil {
		return outs, tw.Flush()
	}
	return outs, nil
}

// EncodeSpec parses and dictionary-encodes a query spec that is not part
// of the database's tracked workload.
func (db *Database) EncodeSpec(s Spec) (bgp.CQ, error) {
	q, err := sparql.Parse(s.Text)
	if err != nil {
		return bgp.CQ{}, fmt.Errorf("benchkit: parsing %s: %w", s.Name, err)
	}
	enc, err := sparql.Encode(q, db.Dict)
	if err != nil {
		return bgp.CQ{}, fmt.Errorf("benchkit: encoding %s: %w", s.Name, err)
	}
	return enc.CQ, nil
}

// warmEval averages the evaluation time of n warm answers.
func (db *Database) warmEval(a *core.Answerer, q bgp.CQ, strat core.Strategy, n int) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < n; i++ {
		ans, err := a.Answer(q, strat)
		if err != nil {
			return 0, err
		}
		total += ans.Report.EvalTime
	}
	return total / time.Duration(n), nil
}
