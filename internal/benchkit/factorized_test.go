package benchkit

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// The sweep's own assertions are the strict-equality test of the
// factorized answer representation on LUBM: for every cross-product
// query it requires byte-identical expanded rows AND identical engine
// metrics between the factorized and flat paths. Beyond that, at least
// one query must actually hold its answers factorized (a smaller
// stored footprint than flat) — otherwise the experiment is dead and
// the sweep's compression column is vacuous.
func TestFactorizedSweepLUBM(t *testing.T) {
	db := tinyLUBM(t)
	outs, err := db.FactorizedSweep(io.Discard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(FactorizedSpecs()) {
		t.Fatalf("sweep covered %d queries, want %d", len(outs), len(FactorizedSpecs()))
	}
	best := 0.0
	for _, o := range outs {
		if o.Rows == 0 {
			t.Errorf("%s: empty answer — bad fixture", o.Query)
		}
		if o.CompressionRatio > best {
			best = o.CompressionRatio
		}
	}
	if best < 2 {
		t.Errorf("no query compressed at least 2x (best %.2fx) — factorization never engaged", best)
	}
}

// The full differential over the tracked workloads: every LUBM and DBLP
// query under every strategy, answered with factorization on
// (sequential and parallel) and off, must produce byte-identical
// expanded rows and strictly equal engine metrics — or fail identically.
func TestFactorizedWorkloadDifferential(t *testing.T) {
	for _, db := range []*Database{tinyLUBM(t), tinyDBLP(t)} {
		fact := db.Answerer(engine.Native, core.Options{Parallelism: 1})
		factPar := db.Answerer(engine.Native, core.Options{})
		flat := db.Answerer(engine.Native, core.Options{Parallelism: 1, NoFactorized: true})
		for _, strat := range core.Strategies() {
			for qi, spec := range db.Specs {
				label := db.Name + "/" + spec.Name + "/" + string(strat)
				q := db.Encoded[qi]
				ansFlat, errFlat := flat.Answer(q, strat)
				for variant, a := range map[string]*core.Answerer{"seq": fact, "par": factPar} {
					ans, err := a.Answer(q, strat)
					if (err == nil) != (errFlat == nil) {
						t.Fatalf("%s %s: factorized err=%v, flat err=%v", label, variant, err, errFlat)
					}
					if err != nil {
						if err.Error() != errFlat.Error() {
							t.Errorf("%s %s: error diverges: %v vs %v", label, variant, err, errFlat)
						}
						continue
					}
					if ans.Report.Metrics != ansFlat.Report.Metrics {
						t.Errorf("%s %s: metrics diverge:\nfact: %+v\nflat: %+v",
							label, variant, ans.Report.Metrics, ansFlat.Report.Metrics)
					}
					if !reflect.DeepEqual(ans.Rel.Materialize(), ansFlat.Rel.Materialize()) {
						t.Errorf("%s %s: expanded rows differ from flat", label, variant)
					}
				}
			}
		}
	}
}
