package benchkit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/server"
)

// ServeOptions configures the throughput sweep of MeasureServe.
type ServeOptions struct {
	// Duration is how long each sweep point drives load (default 2s).
	Duration time.Duration
	// CacheCap is the server's shared plan-cache capacity (0 = server
	// default).
	CacheCap int
	// MaxInflight is the server's admission bound (0 = server default).
	MaxInflight int
	// Queries names the LUBM queries mixed round-robin (default Q03,
	// Q05, Q08 — selective queries whose per-request latency stays
	// small enough that a short sweep point measures steady state).
	Queries []string
}

// ServePoint is one measured point of the sweep: a driving discipline
// (closed/open loop, with or without concurrent mutators) and the
// loadgen result it produced.
type ServePoint struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Mutators    int     `json:"mutators,omitempty"`
	loadgen.Result
}

// ServeSweep is the throughput section embedded in BENCH_*.json: an
// in-process rdfserver over a generated LUBM store, driven through real
// HTTP by the load generator at several concurrency levels.
type ServeSweep struct {
	Scale       string       `json:"scale"`
	Triples     int          `json:"triples"`
	CacheCap    int          `json:"cache_cap,omitempty"`
	MaxInflight int          `json:"max_inflight,omitempty"`
	Queries     []string     `json:"queries"`
	Points      []ServePoint `json:"points"`
	// CacheHitRate is the server's shared plan-cache hit rate over the
	// whole sweep — after the first answer per (strategy, query)
	// signature, every request should hit.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// MeasureServe stands up an in-process query service over a generated
// LUBM store on an ephemeral loopback port and drives it with the load
// generator: closed loops at increasing concurrency, one mixed
// read/write point, and one paced open-loop point.
func MeasureServe(sc Scale, opt ServeOptions) (sweep *ServeSweep, err error) {
	if opt.Duration <= 0 {
		opt.Duration = 2 * time.Second
	}
	if len(opt.Queries) == 0 {
		opt.Queries = []string{"Q03", "Q05", "Q08"}
	}

	st := repro.NewStore()
	var addErr error
	add := func(t rdf.Triple) {
		if addErr == nil {
			addErr = st.Add(t)
		}
	}
	for _, t := range lubm.Ontology() {
		add(t)
	}
	lubm.Generate(sc.LUBMUnivs, 42, sc.LUBMConfig, add)
	if addErr != nil {
		return nil, addErr
	}
	st.Freeze()

	srv, err := server.New(server.Config{
		Store:       st,
		CacheCap:    opt.CacheCap,
		MaxInflight: opt.MaxInflight,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	var serveErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		if serr := hs.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			serveErr = serr
		}
	}()
	defer func() {
		cerr := hs.Close()
		<-done
		for _, e := range []error{cerr, serveErr} {
			if e != nil && err == nil {
				sweep, err = nil, e
			}
		}
	}()
	base := "http://" + ln.Addr().String()

	byName := make(map[string]string)
	for _, q := range lubm.Queries() {
		byName[q.Name] = q.Text
	}
	var work []loadgen.Query
	for _, name := range opt.Queries {
		text, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("benchkit: unknown LUBM query %q", name)
		}
		work = append(work, loadgen.Query{Name: name, Text: text})
	}

	sweep = &ServeSweep{
		Scale:       sc.Name,
		Triples:     st.NumTriples(),
		CacheCap:    opt.CacheCap,
		MaxInflight: opt.MaxInflight,
		Queries:     opt.Queries,
	}
	points := []ServePoint{
		{Name: "closed-c1", Concurrency: 1},
		{Name: "closed-c2", Concurrency: 2},
		{Name: "closed-c4", Concurrency: 4},
		{Name: "mixed-c4-m2", Concurrency: 4, Mutators: 2},
		{Name: "open-50qps", Concurrency: 4, TargetQPS: 50},
	}
	for _, p := range points {
		res, err := loadgen.Run(loadgen.Config{
			URL:         base,
			Queries:     work,
			Duration:    opt.Duration,
			Concurrency: p.Concurrency,
			TargetQPS:   p.TargetQPS,
			Mutators:    p.Mutators,
		})
		if err != nil {
			return nil, err
		}
		p.Result = res
		sweep.Points = append(sweep.Points, p)
	}
	sweep.CacheHitRate = srv.CacheStats().HitRate()
	return sweep, nil
}

// WriteJSON writes the sweep as indented JSON.
func (s *ServeSweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteText writes the sweep as an aligned human-readable table.
func (s *ServeSweep) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "serve throughput (scale=%s, %d triples, queries %v, cache hit rate %.0f%%)\n",
		s.Scale, s.Triples, s.Queries, 100*s.CacheHitRate); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s %5s %5s %8s %9s %9s %9s %9s %9s\n",
		"point", "conc", "mut", "answered", "rejected", "qps", "p50ms", "p95ms", "p99ms"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%-14s %5d %5d %8d %9d %9.1f %9.2f %9.2f %9.2f\n",
			p.Name, p.Concurrency, p.Mutators, p.Answered, p.Rejected,
			p.QPS, p.Latency.P50, p.Latency.P95, p.Latency.P99); err != nil {
			return err
		}
	}
	return nil
}
