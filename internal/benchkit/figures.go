package benchkit

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// StrategyMatrix renders the data behind the paper's Figures 4, 5 and 6:
// per query and per engine profile, the evaluation time of the UCQ, SCQ,
// ECov-JUCQ and GCov-JUCQ reformulations (log-scale bars in the paper;
// a text matrix here). Failures appear as FAIL(kind), the paper's
// missing bars.
func (db *Database) StrategyMatrix(w io.Writer, profiles []engine.Profile) error {
	strategies := []core.Strategy{core.UCQ, core.SCQ, core.ECov, core.GCov}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query")
	for _, p := range profiles {
		for _, s := range strategies {
			fmt.Fprintf(tw, "\t%s/%s", p.Name, s)
		}
	}
	fmt.Fprintln(tw)

	for qi, spec := range db.Specs {
		fmt.Fprintf(tw, "%s", spec.Name)
		for _, p := range profiles {
			a := db.Answerer(p, core.Options{SearchBudget: 30 * time.Second})
			for _, s := range strategies {
				out := db.Run(a, qi, s)
				if out.Failed() {
					fmt.Fprintf(tw, "\t%s", failureLabel(out.Err))
				} else {
					fmt.Fprintf(tw, "\t%.1f", ms(out.Evaluate))
				}
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// SearchEffort renders the data behind the paper's Figures 7 and 8: per
// query, the number of covers explored by ECov and by GCov (top plots)
// and the optimizer running times, including the time to build the plain
// UCQ and SCQ reformulations (bottom plots). A non-exhaustive ECov run
// (cover-space explosion) is marked with a trailing '+', the paper's
// timeout case.
func (db *Database) SearchEffort(w io.Writer) error {
	a := db.Answerer(engine.Native, core.Options{SearchBudget: 30 * time.Second})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tecov covers\tgcov covers\tecov ms\tgcov ms\tucq build ms\tscq build ms\n")
	for qi, spec := range db.Specs {
		choose := func(s core.Strategy) (core.Report, bool) {
			_, rep, err := a.ChooseCover(db.Encoded[qi], s)
			return rep, err == nil
		}
		ecov, ecovOK := choose(core.ECov)
		gcov, gcovOK := choose(core.GCov)
		ucq, ucqOK := choose(core.UCQ)
		scq, scqOK := choose(core.SCQ)

		covers := func(rep core.Report, ok bool, markInexhaustive bool) string {
			if !ok {
				return "FAIL"
			}
			mark := ""
			if markInexhaustive && !rep.Exhaustive {
				mark = "+" // the paper's ECov timeout case
			}
			return fmt.Sprintf("%d%s", rep.CoversExplored, mark)
		}
		millis := func(rep core.Report, ok bool) string {
			if !ok {
				return "FAIL"
			}
			return fmt.Sprintf("%.2f", ms(rep.OptimizeTime))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			spec.Name,
			covers(ecov, ecovOK, true), covers(gcov, gcovOK, false),
			millis(ecov, ecovOK), millis(gcov, gcovOK),
			millis(ucq, ucqOK), millis(scq, scqOK))
	}
	return tw.Flush()
}

// CostSourceComparison renders the data behind the paper's Figure 9: the
// evaluation time of the ECov- and GCov-chosen JUCQs when the search is
// guided by our cost model versus by the engine's internal estimate (the
// paper's Postgres-EXPLAIN variant), on the Postgres-like profile.
func (db *Database) CostSourceComparison(w io.Writer) error {
	own := db.Answerer(engine.PostgresLike, core.Options{Source: core.OwnModel, SearchBudget: 30 * time.Second})
	internal := db.Answerer(engine.PostgresLike, core.Options{Source: core.EngineInternal, SearchBudget: 30 * time.Second})

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tecov(own)\tecov(engine)\tgcov(own)\tgcov(engine)\n")
	for qi, spec := range db.Specs {
		fmt.Fprintf(tw, "%s", spec.Name)
		for _, s := range []core.Strategy{core.ECov, core.GCov} {
			for _, a := range []*core.Answerer{own, internal} {
				out := db.Run(a, qi, s)
				if out.Failed() {
					fmt.Fprintf(tw, "\t%s", failureLabel(out.Err))
				} else {
					fmt.Fprintf(tw, "\t%.1f", ms(out.Evaluate))
				}
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// SaturationComparison renders the data behind the paper's Figure 10:
// query answering times through UCQ reformulation, the GCov JUCQ, and
// saturation-based answering, on the RDBMS-style Postgres-like profile
// and on the unconstrained native profile (the paper's Virtuoso).
func (db *Database) SaturationComparison(w io.Writer) error {
	pg := db.Answerer(engine.PostgresLike, core.Options{SearchBudget: 30 * time.Second})
	native := db.Answerer(engine.Native, core.Options{SearchBudget: 30 * time.Second})

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tucq(pg)\tgcov jucq(pg)\tsaturation(pg)\tsaturation(native)\n")
	for qi, spec := range db.Specs {
		fmt.Fprintf(tw, "%s", spec.Name)
		for _, run := range []struct {
			a *core.Answerer
			s core.Strategy
		}{
			{pg, core.UCQ},
			{pg, core.GCov},
			{pg, core.Saturation},
			{native, core.Saturation},
		} {
			out := db.Run(run.a, qi, run.s)
			if out.Failed() {
				fmt.Fprintf(tw, "\t%s", failureLabel(out.Err))
			} else {
				fmt.Fprintf(tw, "\t%.1f", ms(out.Evaluate))
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
