package benchkit

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// The database cache and the calibration cache are shared package state
// behind cacheMu and calMu: concurrent builders must get the same
// memoized database, and concurrent Answerer construction must not race
// on calibration. Run with -race.
func TestBuildAndCalibrateConcurrent(t *testing.T) {
	const workers = 8
	dbs := make([]*Database, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dbs[w], errs[w] = BuildLUBM(ScaleTiny)
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if dbs[w] != dbs[0] {
			t.Fatalf("worker %d got a different database instance than worker 0", w)
		}
	}

	// Calibration cache: every profile from every worker, repeatedly.
	db := dbs[0]
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prof := engine.Profiles()[w%len(engine.Profiles())]
			for rep := 0; rep < 3; rep++ {
				a := db.Answerer(prof, core.Options{})
				if a == nil {
					t.Error("Answerer returned nil")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
