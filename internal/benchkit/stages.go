package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Stage is one query-lifecycle stage of a staged run: a direct child of
// the run's trace root (optimize, reformulate, evaluate, ...) with its
// duration and integer counters.
type Stage struct {
	Name     string           `json:"name"`
	Ns       int64            `json:"ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	// Floats carries the stage's float attributes — the feedback loop's
	// est_cost/est_rows annotations on the evaluate span.
	Floats map[string]float64 `json:"floats,omitempty"`
}

// RunStaged is Run with a fresh trace attached: the returned outcome
// additionally carries the per-stage breakdown in Outcome.Stages. The
// trace costs a few allocations per stage, so benchmarks measuring the
// steady-state hot path should keep using Run.
func (db *Database) RunStaged(a *core.Answerer, qi int, strat core.Strategy) Outcome {
	root := trace.New(db.Specs[qi].Name)
	out := db.Run(a.WithTrace(root), qi, strat)
	root.End()
	out.Stages = StagesFromTrace(root)
	return out
}

// StagesFromTrace flattens the root's direct children into stages,
// carrying each child's integer attributes as counters. Deeper spans
// (per-arm, per-shard) are deliberately dropped: the stage breakdown is
// the BENCH_*.json summary, not the full trace.
func StagesFromTrace(root *trace.Span) []Stage {
	var out []Stage
	for _, c := range root.Children() {
		st := Stage{Name: c.Name(), Ns: c.Duration().Nanoseconds()}
		for _, a := range c.Attrs() {
			switch {
			case a.IsStr:
			case a.IsFloat:
				if st.Floats == nil {
					st.Floats = make(map[string]float64)
				}
				st.Floats[a.Key] = a.Float
			default:
				if st.Counters == nil {
					st.Counters = make(map[string]int64)
				}
				st.Counters[a.Key] = a.Int
			}
		}
		out = append(out, st)
	}
	return out
}

// StageEntry is the stage breakdown of one (query, strategy) run, the
// unit of the exported stage report.
type StageEntry struct {
	Query    string  `json:"query"`
	Strategy string  `json:"strategy"`
	Rows     int     `json:"rows"`
	TotalNs  int64   `json:"total_ns"`
	Err      string  `json:"err,omitempty"`
	Stages   []Stage `json:"stages"`
}

// StageReport is the document scripts/bench.sh embeds into the
// committed BENCH_*.json files.
type StageReport struct {
	Database string       `json:"database"`
	Profile  string       `json:"profile"`
	Entries  []StageEntry `json:"entries"`
}

// StageSweep answers every named query with every strategy through a
// traced answerer and collects the per-stage breakdowns. Unknown query
// names are skipped.
func (db *Database) StageSweep(a *core.Answerer, profile string, queries []string, strats []core.Strategy) StageReport {
	rep := StageReport{Database: db.Name, Profile: profile, Entries: []StageEntry{}}
	for _, name := range queries {
		qi := db.QueryIndex(name)
		if qi < 0 {
			continue
		}
		for _, strat := range strats {
			out := db.RunStaged(a, qi, strat)
			e := StageEntry{
				Query:    name,
				Strategy: string(strat),
				Rows:     out.Rows,
				TotalNs:  out.Total.Nanoseconds(),
				Stages:   out.Stages,
			}
			if out.Err != nil {
				e.Err = out.Err.Error()
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	return rep
}

// WriteJSON writes the stage report as indented JSON plus a newline.
func (r StageReport) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// StageBreakdown renders the report as a text table: one line per run
// with the stage durations side by side, the human-readable counterpart
// of WriteJSON.
func (r StageReport) StageBreakdown(w io.Writer) error {
	// Collect the stage names present, in a stable order.
	names := make([]string, 0, 4)
	seen := map[string]bool{}
	for _, e := range r.Entries {
		for _, st := range e.Stages {
			if !seen[st.Name] {
				seen[st.Name] = true
				names = append(names, st.Name)
			}
		}
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "%-8s %-10s %10s", "query", "strategy", "total"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, " %10s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, e := range r.Entries {
		if _, err := fmt.Fprintf(w, "%-8s %-10s %10s", e.Query, e.Strategy, time.Duration(e.TotalNs).Round(time.Microsecond)); err != nil {
			return err
		}
		byName := make(map[string]int64, len(e.Stages))
		for _, st := range e.Stages {
			byName[st.Name] += st.Ns
		}
		for _, n := range names {
			cell := "-"
			if ns, ok := byName[n]; ok {
				cell = time.Duration(ns).Round(time.Microsecond).String()
			}
			if _, err := fmt.Fprintf(w, " %10s", cell); err != nil {
				return err
			}
		}
		suffix := "\n"
		if e.Err != "" {
			suffix = "  FAILED\n"
		}
		if _, err := fmt.Fprint(w, suffix); err != nil {
			return err
		}
	}
	return nil
}
