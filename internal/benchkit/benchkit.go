// Package benchkit is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5). It builds the LUBM
// and DBLP workloads at a configurable scale, runs the four reformulation
// strategies and the saturation baseline across the three engine
// profiles, and renders the paper's tables and figures as text reports.
// Both the testing.B benchmarks in the repository root and the
// cmd/benchall tool drive this package.
package benchkit

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dblp"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/saturate"
	"repro/internal/schema"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Spec is one benchmark query.
type Spec struct {
	Name    string
	Text    string
	Comment string
}

// Database is an encoded RDF database ready for experiments: raw and
// saturated stores with statistics, plus the parsed and encoded query
// workload.
type Database struct {
	Name   string
	Dict   *dict.Dict
	Vocab  schema.Vocab
	Closed *schema.Closed

	Raw      *storage.Store
	RawStats *stats.Stats
	Sat      *storage.Store
	SatStats *stats.Stats

	Specs   []Spec
	Queries []*sparql.Query
	Encoded []bgp.CQ
}

// Scale selects the dataset sizes of a benchmark run.
type Scale struct {
	Name       string
	LUBMUnivs  int
	LUBMConfig lubm.Config
	DBLPPubs   int
}

// The predefined scales. Small (the default) keeps the full suite under a
// minute; Medium approximates the paper's LUBM 1M / DBLP "millions"
// regime, scaled to this reproduction's in-process engine.
var (
	ScaleTiny   = Scale{Name: "tiny", LUBMUnivs: 1, LUBMConfig: lubm.Tiny(), DBLPPubs: 500}
	ScaleSmall  = Scale{Name: "small", LUBMUnivs: 1, LUBMConfig: lubm.Default(), DBLPPubs: 20_000}
	ScaleMedium = Scale{Name: "medium", LUBMUnivs: 8, LUBMConfig: lubm.Default(), DBLPPubs: 150_000}
)

// ScaleByName resolves a scale name; unknown names return ScaleSmall.
func ScaleByName(name string) Scale {
	switch name {
	case "tiny":
		return ScaleTiny
	case "medium":
		return ScaleMedium
	case "small", "":
		return ScaleSmall
	default:
		return ScaleSmall
	}
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Database{}
)

// BuildLUBM builds (and memoizes per process) the LUBM database at the
// given scale. An error means the workload definition itself is broken
// (a query failed to parse or encode).
func BuildLUBM(sc Scale) (*Database, error) {
	key := fmt.Sprintf("lubm/%s/%d", sc.Name, sc.LUBMUnivs)
	return buildCached(key, func() (*Database, error) {
		specs := make([]Spec, 0, 28)
		for _, q := range lubm.Queries() {
			specs = append(specs, Spec{Name: q.Name, Text: q.Text, Comment: q.Comment})
		}
		return build("LUBM", lubm.Ontology(), func(emit func(rdf.Triple)) {
			lubm.Generate(sc.LUBMUnivs, 42, sc.LUBMConfig, emit)
		}, specs)
	})
}

// BuildDBLP builds (and memoizes) the DBLP database at the given scale.
func BuildDBLP(sc Scale) (*Database, error) {
	key := fmt.Sprintf("dblp/%s/%d", sc.Name, sc.DBLPPubs)
	return buildCached(key, func() (*Database, error) {
		specs := make([]Spec, 0, 10)
		for _, q := range dblp.Queries() {
			specs = append(specs, Spec{Name: q.Name, Text: q.Text, Comment: q.Comment})
		}
		return build("DBLP", dblp.Ontology(), func(emit func(rdf.Triple)) {
			dblp.Generate(sc.DBLPPubs, 7, emit)
		}, specs)
	})
}

func buildCached(key string, f func() (*Database, error)) (*Database, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if db, ok := cache[key]; ok {
		return db, nil
	}
	db, err := f()
	if err != nil {
		return nil, err
	}
	cache[key] = db
	return db, nil
}

func build(name string, ontology []rdf.Triple, gen func(func(rdf.Triple)), specs []Spec) (*Database, error) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	sch := schema.New(vocab)
	for _, t := range ontology {
		s, p, o := d.EncodeTriple(t)
		sch.AddTriple(s, p, o)
	}
	closed := sch.Close()

	b := storage.NewBuilder()
	gen(func(t rdf.Triple) {
		s, p, o := d.EncodeTriple(t)
		b.Add(storage.Triple{S: s, P: p, O: o})
	})
	for _, c := range closed.ConstraintTriples() {
		b.Add(storage.Triple{S: c[0], P: c[1], O: c[2]})
	}
	raw := b.Build()
	sat, _ := saturate.StoreFrom(raw.Each, closed)

	db := &Database{
		Name:     name,
		Dict:     d,
		Vocab:    vocab,
		Closed:   closed,
		Raw:      raw,
		RawStats: stats.Collect(raw, vocab),
		Sat:      sat,
		SatStats: stats.Collect(sat, vocab),
		Specs:    specs,
	}
	for _, s := range specs {
		q, err := sparql.Parse(s.Text)
		if err != nil {
			return nil, fmt.Errorf("benchkit: parsing %s %s: %w", name, s.Name, err)
		}
		enc, err := sparql.Encode(q, d)
		if err != nil {
			return nil, fmt.Errorf("benchkit: encoding %s %s: %w", name, s.Name, err)
		}
		db.Queries = append(db.Queries, q)
		db.Encoded = append(db.Encoded, enc.CQ)
	}
	return db, nil
}

// Answerer builds a core answerer over the database for one engine
// profile, calibrating the cost model for that profile as the paper does
// per RDBMS.
func (db *Database) Answerer(prof engine.Profile, opts core.Options) *core.Answerer {
	raw := engine.New(db.Raw, db.RawStats, prof)
	sat := engine.New(db.Sat, db.SatStats, prof)
	if opts.Params == (cost.Params{}) {
		opts.Params = db.calibrated(prof)
	}
	return core.NewAnswerer(db.Closed, raw, sat, opts)
}

var (
	calMu    sync.Mutex
	calCache = map[string]cost.Params{}
)

// calibrated memoizes per-profile calibration on this database.
func (db *Database) calibrated(prof engine.Profile) cost.Params {
	// The store representation is part of the key: a flat and a frozen
	// build of the same data calibrate to different scan constants.
	repr := "flat"
	if db.Raw.Footprint().Compressed {
		repr = "frozen"
	}
	key := db.Name + "/" + prof.Name + "/" + fmt.Sprint(db.Raw.Len()) + "/" + repr
	calMu.Lock()
	defer calMu.Unlock()
	if p, ok := calCache[key]; ok {
		return p
	}
	p := core.Calibrate(engine.New(db.Raw, db.RawStats, prof))
	calCache[key] = p
	return p
}

// Outcome is the result of one strategy run: timing split as the paper
// reports it, answer count, and the failure (if any).
type Outcome struct {
	Strategy core.Strategy
	Rows     int
	Optimize time.Duration
	Evaluate time.Duration
	Total    time.Duration
	Report   core.Report
	Err      error
	// Stages is the per-stage breakdown of a traced run; only RunStaged
	// fills it (plain Run leaves it nil to keep the hot path untraced).
	Stages []Stage
}

// Failed reports whether the run failed (the paper's "missing bars").
func (o Outcome) Failed() bool { return o.Err != nil }

// Run answers query index qi of the database with the given strategy.
func (db *Database) Run(a *core.Answerer, qi int, strat core.Strategy) Outcome {
	q := db.Encoded[qi]
	start := time.Now()
	ans, err := a.Answer(q, strat)
	out := Outcome{Strategy: strat, Total: time.Since(start), Err: err}
	if ans != nil {
		out.Report = ans.Report
		out.Optimize = ans.Report.OptimizeTime
		out.Evaluate = ans.Report.EvalTime
		if ans.Rel != nil {
			out.Rows = ans.Rel.Len()
		}
	}
	return out
}

// RunAveraged runs the query once cold (discarded unless it fails) and
// then n times warm, returning the last outcome with timings averaged
// over the warm runs — the paper's "averaged over 3 warm executions"
// methodology (Section 5.1). A failing run returns immediately.
func (db *Database) RunAveraged(a *core.Answerer, qi int, strat core.Strategy, n int) Outcome {
	if n < 1 {
		n = 1
	}
	if cold := db.Run(a, qi, strat); cold.Failed() {
		return cold
	}
	var opt, eval, total time.Duration
	var last Outcome
	for i := 0; i < n; i++ {
		last = db.Run(a, qi, strat)
		if last.Failed() {
			return last
		}
		opt += last.Optimize
		eval += last.Evaluate
		total += last.Total
	}
	last.Optimize = opt / time.Duration(n)
	last.Evaluate = eval / time.Duration(n)
	last.Total = total / time.Duration(n)
	return last
}

// QueryIndex returns the index of a query by name, or -1.
func (db *Database) QueryIndex(name string) int {
	for i, s := range db.Specs {
		if s.Name == name {
			return i
		}
	}
	return -1
}
