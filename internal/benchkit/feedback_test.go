package benchkit

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestMeasureFeedback(t *testing.T) {
	rep, err := MeasureFeedback(ScaleTiny, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3", len(rep.Epochs))
	}
	if !rep.AnswersIdentical {
		t.Error("feedback changed answers — the loop must stay advisory")
	}
	first, last := rep.Epochs[0], rep.Epochs[len(rep.Epochs)-1]
	if last.MeanCardErr > first.MeanCardErr {
		t.Errorf("card error grew over the sweep: %v -> %v", first.MeanCardErr, last.MeanCardErr)
	}
	if last.Reprices == 0 {
		t.Error("the warm epochs re-priced no cached plans")
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("text report is empty")
	}
	buf.Reset()
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round FeedbackReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if round.CardImprovement != rep.CardImprovement {
		t.Error("JSON round trip lost the improvement factor")
	}
}
