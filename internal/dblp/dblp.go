// Package dblp provides the DBLP substitute of this reproduction: a
// bibliographic RDFS ontology (a publication-type hierarchy with creator
// and venue subproperties, deliberately shallower and wider than LUBM's,
// like the real DBLP data), a seeded generator with DBLP-like skew
// (papers dominate, few books, heavy-tailed author productivity), and the
// 10 BGP queries of the paper's DBLP experiments.
package dblp

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Namespace is the bibliographic schema namespace.
const Namespace = "http://dblp.example.org/schema#"

// Resource namespace for generated entities.
const ResourceNS = "http://dblp.example.org/rec/"

// Class returns the IRI of a schema class.
func Class(name string) rdf.Term { return rdf.NewIRI(Namespace + name) }

// Prop returns the IRI of a schema property.
func Prop(name string) rdf.Term { return rdf.NewIRI(Namespace + name) }

var subClasses = [][2]string{
	{"Article", "Publication"},
	{"Inproceedings", "Publication"},
	{"Incollection", "Publication"},
	{"Proceedings", "Publication"},
	{"Book", "Publication"},
	{"Thesis", "Publication"},
	{"PhDThesis", "Thesis"},
	{"MastersThesis", "Thesis"},
	{"WWW", "Publication"},
	{"Journal", "Venue"},
	{"Conference", "Venue"},
	{"Series", "Venue"},
}

var subProperties = [][2]string{
	{"author", "creator"},
	{"editor", "creator"},
	{"journal", "publishedIn"},
	{"booktitle", "publishedIn"},
}

var domains = [][2]string{
	{"creator", "Publication"},
	{"publishedIn", "Publication"},
	{"year", "Publication"},
	{"title", "Publication"},
	{"cites", "Publication"},
	{"crossref", "Inproceedings"},
	{"homepage", "Person"},
	{"affiliation", "Person"},
}

var ranges = [][2]string{
	{"creator", "Person"},
	{"publishedIn", "Venue"},
	{"journal", "Journal"},
	{"booktitle", "Conference"},
	{"cites", "Publication"},
	{"crossref", "Proceedings"},
}

// Ontology returns the RDFS constraint triples.
func Ontology() []rdf.Triple {
	var out []rdf.Triple
	for _, sc := range subClasses {
		out = append(out, rdf.NewTriple(Class(sc[0]), rdf.SubClassOf, Class(sc[1])))
	}
	for _, sp := range subProperties {
		out = append(out, rdf.NewTriple(Prop(sp[0]), rdf.SubPropertyOf, Prop(sp[1])))
	}
	for _, d := range domains {
		out = append(out, rdf.NewTriple(Prop(d[0]), rdf.Domain, Class(d[1])))
	}
	for _, r := range ranges {
		out = append(out, rdf.NewTriple(Prop(r[0]), rdf.Range, Class(r[1])))
	}
	return out
}

// Generate emits the data triples of a bibliography with nPubs
// publications, deterministically for a given seed. Roughly 7 triples are
// emitted per publication, so nPubs = 30_000 yields a ~200k-triple
// dataset (the paper's DBLP dump is 8M triples for ~1.2M records; the
// per-record density matches).
func Generate(nPubs int, seed int64, emit func(rdf.Triple)) {
	rng := rand.New(rand.NewSource(seed))
	t := func(s, p, o rdf.Term) { emit(rdf.NewTriple(s, p, o)) }

	nAuthors := nPubs/3 + 10
	nJournals := nPubs/400 + 5
	nConfs := nPubs/200 + 8

	person := func(i int) rdf.Term { return rdf.NewIRI(ResourceNS + fmt.Sprintf("person/p%d", i)) }
	journal := func(i int) rdf.Term { return rdf.NewIRI(ResourceNS + fmt.Sprintf("journal/j%d", i)) }
	conf := func(i int) rdf.Term { return rdf.NewIRI(ResourceNS + fmt.Sprintf("conf/c%d", i)) }
	pub := func(i int) rdf.Term { return rdf.NewIRI(ResourceNS + fmt.Sprintf("pub/r%d", i)) }

	// Venues are explicitly typed; a fraction of persons get homepages
	// (those become explicitly typed through the domain constraint only
	// implicitly — the explicit Person typing is left out on purpose, as
	// in the real DBLP dump, which is what makes the reformulation rules
	// earn their keep here).
	for i := 0; i < nJournals; i++ {
		t(journal(i), rdf.Type, Class("Journal"))
		t(journal(i), Prop("name"), rdf.NewLiteral(fmt.Sprintf("Journal %d", i)))
	}
	for i := 0; i < nConfs; i++ {
		t(conf(i), rdf.Type, Class("Conference"))
		t(conf(i), Prop("name"), rdf.NewLiteral(fmt.Sprintf("Conf %d", i)))
	}
	for i := 0; i < nAuthors; i++ {
		t(person(i), Prop("name"), rdf.NewLiteral(fmt.Sprintf("Author %d", i)))
		if i%7 == 0 {
			t(person(i), Prop("homepage"), rdf.NewLiteral(fmt.Sprintf("http://home/%d", i)))
		}
		if i%5 == 0 {
			t(person(i), Prop("affiliation"), rdf.NewLiteral(fmt.Sprintf("Institute %d", i%97)))
		}
	}

	// Heavy-tailed author sampling: quadratic skew toward low indexes.
	randAuthor := func() rdf.Term {
		x := rng.Float64()
		return person(int(x * x * float64(nAuthors)))
	}

	for i := 0; i < nPubs; i++ {
		p := pub(i)
		roll := rng.Intn(100)
		var kind string
		switch {
		case roll < 45:
			kind = "Inproceedings"
		case roll < 80:
			kind = "Article"
		case roll < 90:
			kind = "Incollection"
		case roll < 93:
			kind = "Book"
		case roll < 95:
			kind = "PhDThesis"
		case roll < 97:
			kind = "MastersThesis"
		default:
			kind = "WWW"
		}
		t(p, rdf.Type, Class(kind))
		t(p, Prop("title"), rdf.NewLiteral(fmt.Sprintf("Title of record %d", i)))
		year := 1970 + rng.Intn(46)
		t(p, Prop("year"), rdf.NewTypedLiteral(fmt.Sprintf("%d", year), rdf.XSDGYear))

		nAuth := 1 + rng.Intn(4)
		if kind == "PhDThesis" || kind == "MastersThesis" {
			nAuth = 1
		}
		for a := 0; a < nAuth; a++ {
			t(p, Prop("author"), randAuthor())
		}
		switch kind {
		case "Article":
			t(p, Prop("journal"), journal(rng.Intn(nJournals)))
		case "Inproceedings":
			t(p, Prop("booktitle"), conf(rng.Intn(nConfs)))
		case "Book", "Incollection":
			if rng.Intn(2) == 0 {
				t(p, Prop("editor"), randAuthor())
			}
		}
		// Citations point backward.
		if i > 10 {
			for c, n := 0, rng.Intn(4); c < n; c++ {
				t(p, Prop("cites"), pub(rng.Intn(i)))
			}
		}
	}
}

// QuerySpec mirrors lubm.QuerySpec for the DBLP workload.
type QuerySpec struct {
	Name    string
	Text    string
	Comment string
}

const prolog = "PREFIX dblp: <" + Namespace + ">\n"

const (
	author0  = "<" + ResourceNS + "person/p0>"
	journal0 = "<" + ResourceNS + "journal/j0>"
	conf0    = "<" + ResourceNS + "conf/c0>"
)

// Queries returns the 10 DBLP benchmark queries; Q10 has ten atoms, the
// shape on which the paper reports exhaustive cover search becoming
// infeasible.
func Queries() []QuerySpec {
	return []QuerySpec{
		{
			Name: "Q01",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type dblp:Article .
				?x dblp:creator ` + author0 + ` .
			}`,
			Comment: "journal articles the most prolific author created (Publication itself would be redundant: creator's domain implies it)",
		},
		{
			Name: "Q02",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x dblp:author ` + author0 + ` .
			}`,
			Comment: "type variable over one author's records",
		},
		{
			Name: "Q03",
			Text: prolog + `SELECT ?x ?v WHERE {
				?x rdf:type dblp:Article .
				?x dblp:publishedIn ?v .
			}`,
			Comment: "articles with their venues: publishedIn hierarchy",
		},
		{
			Name: "Q04",
			Text: prolog + `SELECT ?x ?a WHERE {
				?x dblp:creator ?a .
				?x dblp:publishedIn ` + journal0 + ` .
			}`,
			Comment: "creators in one journal: two small hierarchies",
		},
		{
			Name: "Q05",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x dblp:cites ?y .
				?y rdf:type dblp:Thesis .
			}`,
			Comment: "citations of theses: narrow class, wide cites",
		},
		{
			Name: "Q06",
			Text: prolog + `SELECT ?x ?y ?a WHERE {
				?x rdf:type ?y .
				?x dblp:creator ?a .
				?a dblp:homepage ?h .
			}`,
			Comment: "type variable over records of authors with homepages",
		},
		{
			Name: "Q07",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x dblp:cites ?y .
				?x dblp:booktitle ` + conf0 + ` .
				?y dblp:journal ` + journal0 + ` .
			}`,
			Comment: "conference papers citing one journal's articles",
		},
		{
			Name: "Q08",
			Text: prolog + `SELECT ?x ?u ?y ?v WHERE {
				?x rdf:type ?u .
				?y rdf:type ?v .
				?x dblp:cites ?y .
			}`,
			Comment: "two type variables over the citation graph — large reformulation",
		},
		{
			Name: "Q09",
			Text: prolog + `SELECT ?x ?p WHERE {
				?x ?p ` + author0 + ` .
			}`,
			Comment: "property variable with constant object",
		},
		{
			Name: "Q10",
			Text: prolog + `SELECT ?x ?y ?u ?v ?a ?b WHERE {
				?x rdf:type ?u .
				?y rdf:type ?v .
				?x dblp:creator ?a .
				?y dblp:creator ?a .
				?x dblp:cites ?z .
				?y dblp:cites ?z .
				?x dblp:publishedIn ?w .
				?y dblp:publishedIn ?w .
				?x dblp:year ?b .
				?y dblp:year ?b .
			}`,
			Comment: "ten atoms: co-citing, co-venue, co-year record pairs — the cover space explodes and ECov cannot finish",
		},
	}
}

// ParseAll parses every query, reporting the first failure with the
// query's name; the texts are static, so an error always indicates a
// workload-definition bug.
func ParseAll(specs []QuerySpec) ([]*sparql.Query, error) {
	out := make([]*sparql.Query, len(specs))
	for i, s := range specs {
		q, err := sparql.Parse(s.Text)
		if err != nil {
			return nil, fmt.Errorf("dblp: parsing %s: %w", s.Name, err)
		}
		out[i] = q
	}
	return out, nil
}
