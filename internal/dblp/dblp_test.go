package dblp

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestOntologyWellFormed(t *testing.T) {
	seen := make(map[rdf.Triple]bool)
	for _, tr := range Ontology() {
		if err := tr.Validate(); err != nil {
			t.Errorf("invalid ontology triple %v: %v", tr, err)
		}
		if !rdf.IsSchemaTriple(tr) {
			t.Errorf("non-constraint triple in ontology: %v", tr)
		}
		if seen[tr] {
			t.Errorf("duplicate ontology triple %v", tr)
		}
		seen[tr] = true
	}
}

func TestOntologyAnchors(t *testing.T) {
	have := make(map[rdf.Triple]bool)
	for _, tr := range Ontology() {
		have[tr] = true
	}
	for _, want := range []rdf.Triple{
		rdf.NewTriple(Prop("author"), rdf.SubPropertyOf, Prop("creator")),
		rdf.NewTriple(Prop("editor"), rdf.SubPropertyOf, Prop("creator")),
		rdf.NewTriple(Prop("journal"), rdf.SubPropertyOf, Prop("publishedIn")),
		rdf.NewTriple(Class("PhDThesis"), rdf.SubClassOf, Class("Thesis")),
		rdf.NewTriple(Class("Thesis"), rdf.SubClassOf, Class("Publication")),
	} {
		if !have[want] {
			t.Errorf("ontology missing %v", want)
		}
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	run := func() []rdf.Triple {
		var out []rdf.Triple
		Generate(300, 7, func(tr rdf.Triple) { out = append(out, tr) })
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic triple at %d", i)
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("invalid triple %v: %v", a[i], err)
		}
	}
	// Density: roughly 5-10 triples per record.
	if len(a) < 300*4 || len(a) > 300*12 {
		t.Errorf("density off: %d triples for 300 records", len(a))
	}
}

// Persons are deliberately not explicitly typed (the range/domain
// constraints must type them) — the property that makes reformulation
// necessary on this workload.
func TestPersonsNotExplicitlyTyped(t *testing.T) {
	person := Class("Person")
	Generate(200, 7, func(tr rdf.Triple) {
		if tr.P == rdf.Type && tr.O == person {
			t.Fatalf("explicit Person typing found: %v", tr)
		}
	})
}

func TestCitationsPointBackward(t *testing.T) {
	ids := make(map[string]int)
	i := 0
	Generate(200, 7, func(tr rdf.Triple) {
		if tr.P == rdf.Type {
			if _, ok := ids[tr.S.Value]; !ok {
				ids[tr.S.Value] = i
				i++
			}
		}
	})
	Generate(200, 7, func(tr rdf.Triple) {
		if tr.P == Prop("cites") {
			from, okF := ids[tr.S.Value]
			to, okT := ids[tr.O.Value]
			if okF && okT && to >= from {
				t.Fatalf("citation points forward: %v", tr)
			}
		}
	})
}

func TestQueriesParse(t *testing.T) {
	specs := Queries()
	if len(specs) != 10 {
		t.Fatalf("got %d queries, want 10", len(specs))
	}
	for _, s := range specs {
		if _, err := sparql.Parse(s.Text); err != nil {
			t.Errorf("%s does not parse: %v", s.Name, err)
		}
	}
	// Q10 must have ten atoms — the ECov-infeasible shape.
	q10, err := sparql.Parse(specs[9].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(q10.Where) != 10 {
		t.Errorf("Q10 has %d atoms, want 10", len(q10.Where))
	}
}
