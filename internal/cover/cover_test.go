package cover

import (
	"math/rand"
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
)

// chainQuery builds q(v0) :- (v0 p v1), (v1 p v2), ... — a path of n atoms.
func chainQuery(n int) bgp.CQ {
	q := bgp.CQ{Head: []bgp.Term{bgp.V(0)}}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, bgp.Atom{
			S: bgp.V(uint32(i)), P: bgp.C(100), O: bgp.V(uint32(i + 1)),
		})
	}
	return q
}

// starQuery builds q(v0) :- (v0 p1 v1), (v0 p2 v2), ... — all atoms share v0.
func starQuery(n int) bgp.CQ {
	q := bgp.CQ{Head: []bgp.Term{bgp.V(0)}}
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, bgp.Atom{
			S: bgp.V(0), P: bgp.C(dict.ID(100 + i)), O: bgp.V(uint32(i + 1)),
		})
	}
	return q
}

func TestFragmentBasics(t *testing.T) {
	f := Single(0).With(2)
	if !f.Has(0) || f.Has(1) || !f.Has(2) {
		t.Error("Has wrong")
	}
	if f.Count() != 2 {
		t.Errorf("Count = %d", f.Count())
	}
	if got := f.Atoms(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Atoms = %v", got)
	}
	if f.String() != "{t1,t3}" {
		t.Errorf("String = %q", f.String())
	}
	if !f.ContainsAll(Single(2)) || f.ContainsAll(Single(1)) {
		t.Error("ContainsAll wrong")
	}
}

func TestCoverCanonical(t *testing.T) {
	a := NewCover(Single(1), Single(0), Single(1))
	b := NewCover(Single(0), Single(1))
	if a.Key() != b.Key() {
		t.Errorf("canonical keys differ: %q vs %q", a.Key(), b.Key())
	}
	if len(a) != 2 {
		t.Errorf("duplicates not removed: %v", a)
	}
}

func TestGraphAdjacency(t *testing.T) {
	q := chainQuery(3) // t1(v0,v1) t2(v1,v2) t3(v2,v3)
	g := mustGraph(q)
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 2) || g.Adjacent(0, 2) {
		t.Error("chain adjacency wrong")
	}
	if !g.Joins(0, Single(1)) || g.Joins(0, Single(2)) {
		t.Error("Joins wrong")
	}
}

func TestFragmentConnected(t *testing.T) {
	g := mustGraph(chainQuery(3))
	if !g.FragmentConnected(Single(0).With(1)) {
		t.Error("{t1,t2} should be connected")
	}
	if g.FragmentConnected(Single(0).With(2)) {
		t.Error("{t1,t3} shares no variable, should be disconnected")
	}
	if !g.FragmentConnected(Single(0).With(1).With(2)) {
		t.Error("{t1,t2,t3} should be connected")
	}
	if g.FragmentConnected(0) {
		t.Error("empty fragment is not connected")
	}
}

func TestValid(t *testing.T) {
	g := mustGraph(chainQuery(3))
	cases := []struct {
		c    Cover
		want bool
	}{
		{NewCover(Single(0).With(1), Single(1).With(2)), true},
		{NewCover(Single(0).With(1).With(2)), true},                     // whole query
		{NewCover(Single(0), Single(1), Single(2)), true},               // per atom
		{NewCover(Single(0), Single(1)), false},                         // misses t3
		{NewCover(Single(0).With(1), Single(0).With(1).With(2)), false}, // inclusion
		{NewCover(Single(0).With(2), Single(1)), false},                 // cartesian fragment
		{Cover{}, false},
	}
	for _, c := range cases {
		if got := g.Valid(c.c); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.c, got, c.want)
		}
	}
}

func TestMinimal(t *testing.T) {
	if !NewCover(Single(0).With(1), Single(1).With(2)).Minimal() {
		t.Error("overlapping cover with private atoms should be minimal")
	}
	if NewCover(Single(0).With(1).With(2), Single(1).With(2)).Minimal() {
		t.Error("fragment fully covered by the other is not minimal")
	}
}

func TestWholeAndPerAtom(t *testing.T) {
	g := mustGraph(chainQuery(4))
	if !g.Valid(WholeQuery(4)) {
		t.Error("whole-query cover should be valid")
	}
	if !g.Valid(PerAtom(4)) {
		t.Error("per-atom cover should be valid on a connected query")
	}
	if len(PerAtom(4)) != 4 || len(WholeQuery(4)) != 1 {
		t.Error("cover shapes wrong")
	}
}

// The paper's Table 2 enumerates all eight covers of a three-atom query
// where every pair of atoms joins: UCQ, SCQ, three two-fragment covers of
// sizes {2,1}, and three of sizes {2,2} — our enumeration must find the
// same eight (the count the upper bound of Section 3 refers to).
func TestEnumerateMinimalTriangle(t *testing.T) {
	g := mustGraph(starQuery(3))
	var covers []Cover
	exhaustive := g.EnumerateMinimal(0, func(c Cover) bool {
		covers = append(covers, c)
		return true
	})
	if !exhaustive {
		t.Error("enumeration should be exhaustive")
	}
	if len(covers) != 8 {
		for _, c := range covers {
			t.Logf("  %v", c)
		}
		t.Fatalf("enumerated %d covers, want 8", len(covers))
	}
	seen := make(map[string]bool)
	for _, c := range covers {
		if seen[c.Key()] {
			t.Errorf("duplicate cover %v", c)
		}
		seen[c.Key()] = true
		if !g.Valid(c) || !c.Minimal() {
			t.Errorf("invalid or non-minimal cover %v", c)
		}
	}
}

func TestEnumerateChain(t *testing.T) {
	g := mustGraph(chainQuery(3))
	count := 0
	g.EnumerateMinimal(0, func(c Cover) bool {
		count++
		if !g.Valid(c) {
			t.Errorf("invalid cover %v", c)
		}
		return true
	})
	// Chain of 3: fragments must be contiguous runs. Covers: {123},
	// {1}{2}{3}, {12}{3}, {1}{23}, {12}{23} = 5.
	if count != 5 {
		t.Errorf("chain of 3 has %d covers, want 5", count)
	}
}

func TestEnumerateLimit(t *testing.T) {
	g := mustGraph(starQuery(5))
	count := 0
	exhaustive := g.EnumerateMinimal(3, func(c Cover) bool {
		count++
		return true
	})
	if exhaustive {
		t.Error("limited enumeration must report non-exhaustive")
	}
	if count > 3 {
		t.Errorf("visited %d covers, limit 3", count)
	}
}

// Every enumerated cover must be valid and minimal on random query shapes.
func TestEnumerateAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4)
		var q bgp.CQ
		q.Head = []bgp.Term{bgp.V(0)}
		// Random connected query: atom i joins a random earlier atom.
		for i := 0; i < n; i++ {
			prev := uint32(0)
			if i > 0 {
				prev = uint32(rng.Intn(i*2 + 1))
			}
			q.Atoms = append(q.Atoms, bgp.Atom{
				S: bgp.V(prev), P: bgp.C(dict.ID(100 + i)), O: bgp.V(uint32(i*2 + 2)),
			})
		}
		g := mustGraph(q)
		g.EnumerateMinimal(10000, func(c Cover) bool {
			if !g.Valid(c) {
				t.Errorf("trial %d: invalid cover %v for %s", trial, c, q)
			}
			if !c.Minimal() {
				t.Errorf("trial %d: non-minimal cover %v", trial, c)
			}
			return true
		})
	}
}

func TestCoverQuery(t *testing.T) {
	// q(v0) :- t1(v0 p v1), t2(v1 p v2), t3(v2 p v3)
	q := chainQuery(3)
	// Fragment {t2}: head must be v1 (shared with t1) and v2 (shared
	// with t3); v0 (distinguished) is not in the fragment.
	sub := Query(q, Single(1))
	if len(sub.Atoms) != 1 || sub.Atoms[0] != q.Atoms[1] {
		t.Fatalf("fragment atoms wrong: %v", sub.Atoms)
	}
	if len(sub.Head) != 2 || sub.Head[0] != bgp.V(1) || sub.Head[1] != bgp.V(2) {
		t.Errorf("cover query head = %v, want [?v1 ?v2]", sub.Head)
	}
	// Fragment {t1,t2}: head = v0 (distinguished) and v2 (shared with t3).
	sub2 := Query(q, Single(0).With(1))
	if len(sub2.Head) != 2 || sub2.Head[0] != bgp.V(0) || sub2.Head[1] != bgp.V(2) {
		t.Errorf("cover query head = %v, want [?v0 ?v2]", sub2.Head)
	}
	// Whole query: head = distinguished vars only.
	sub3 := Query(q, Single(0).With(1).With(2))
	if len(sub3.Head) != 1 || sub3.Head[0] != bgp.V(0) {
		t.Errorf("whole-query head = %v, want [?v0]", sub3.Head)
	}
}

// mustGraph wraps NewGraph for queries the tests construct under the
// MaxAtoms limit.
func mustGraph(q bgp.CQ) *Graph {
	g, err := NewGraph(q)
	if err != nil {
		panic(err)
	}
	return g
}

// Queries beyond MaxAtoms do not fit the bitmask representation and
// must be rejected, not mis-indexed.
func TestNewGraphTooManyAtoms(t *testing.T) {
	if _, err := NewGraph(chainQuery(MaxAtoms + 1)); err == nil {
		t.Fatal("NewGraph accepted a query beyond MaxAtoms")
	}
	if g, err := NewGraph(chainQuery(MaxAtoms)); err != nil || g.N() != MaxAtoms {
		t.Fatalf("NewGraph rejected a query at the MaxAtoms limit: %v", err)
	}
}
