// Package cover implements BGP query covers (Definition 3.3 of the
// paper), cover queries (Definition 3.4) and the enumeration of the
// cover-based reformulation search space that ECov explores.
//
// A cover of a query with atoms t1..tn is a set of fragments — non-empty,
// possibly overlapping subsets of the atoms — whose union is all the
// atoms, with no fragment included in another, and (when there is more
// than one fragment) every fragment sharing a variable with another. As
// the paper notes after its Theorem 3.1, fragments are additionally
// required to be internally connected so that no cover query features a
// cartesian product.
//
// Fragments are bitmasks over atom positions, so queries of up to 64
// atoms are supported — far beyond the paper's 10-atom maximum.
package cover

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/bgp"
)

// Fragment is a set of atom indexes of one query, as a bitmask.
type Fragment uint64

// MaxAtoms is the largest query size the bitmask representation handles.
const MaxAtoms = 64

// Single returns the fragment containing only atom i.
func Single(i int) Fragment { return 1 << uint(i) }

// Has reports whether atom i is in the fragment.
func (f Fragment) Has(i int) bool { return f&(1<<uint(i)) != 0 }

// With returns the fragment extended with atom i.
func (f Fragment) With(i int) Fragment { return f | 1<<uint(i) }

// Count returns the number of atoms in the fragment.
func (f Fragment) Count() int { return bits.OnesCount64(uint64(f)) }

// ContainsAll reports whether f includes every atom of g.
func (f Fragment) ContainsAll(g Fragment) bool { return f&g == g }

// Atoms returns the atom indexes of the fragment in increasing order.
func (f Fragment) Atoms() []int {
	out := make([]int, 0, f.Count())
	for i := 0; i < MaxAtoms; i++ {
		if f.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the fragment as {t1,t3}.
func (f Fragment) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for n, i := range f.Atoms() {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "t%d", i+1)
	}
	b.WriteByte('}')
	return b.String()
}

// Cover is a set of fragments, kept sorted so equal covers have equal
// representations (and Key values).
type Cover []Fragment

// NewCover returns a canonical (sorted, deduplicated) cover.
func NewCover(frags ...Fragment) Cover {
	c := append(Cover(nil), frags...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	w := 0
	for i, f := range c {
		if i == 0 || f != c[i-1] {
			c[w] = f
			w++
		}
	}
	return c[:w]
}

// Key returns a canonical map key for the cover.
func (c Cover) Key() string {
	var b strings.Builder
	for _, f := range c {
		fmt.Fprintf(&b, "%x.", uint64(f))
	}
	return b.String()
}

// Union returns the union of all fragments.
func (c Cover) Union() Fragment {
	var u Fragment
	for _, f := range c {
		u |= f
	}
	return u
}

// String renders the cover as {{t1,t2},{t3}}.
func (c Cover) String() string {
	parts := make([]string, len(c))
	for i, f := range c {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Graph is the variable-sharing structure of one query: adj[i][j] reports
// whether atoms i and j share a variable (the paper's "joins with").
type Graph struct {
	n   int
	adj [][]bool
}

// NewGraph builds the sharing graph of the query. Queries beyond
// MaxAtoms atoms do not fit the bitmask fragment representation and are
// reported as an error.
func NewGraph(q bgp.CQ) (*Graph, error) {
	n := len(q.Atoms)
	if n > MaxAtoms {
		return nil, fmt.Errorf("cover: query has %d atoms, limit is %d", n, MaxAtoms)
	}
	g := &Graph{n: n, adj: make([][]bool, n)}
	for i := range g.adj {
		g.adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if q.Atoms[i].SharesVar(q.Atoms[j]) {
				g.adj[i][j] = true
				g.adj[j][i] = true
			}
		}
	}
	return g, nil
}

// N returns the number of atoms.
func (g *Graph) N() int { return g.n }

// Adjacent reports whether atoms i and j share a variable.
func (g *Graph) Adjacent(i, j int) bool { return g.adj[i][j] }

// Joins reports whether atom i shares a variable with any atom of f.
func (g *Graph) Joins(i int, f Fragment) bool {
	for j := 0; j < g.n; j++ {
		if f.Has(j) && g.adj[i][j] {
			return true
		}
	}
	return false
}

// FragmentConnected reports whether the fragment's atoms form a single
// connected component under variable sharing (so its cover query has no
// cartesian product).
func (g *Graph) FragmentConnected(f Fragment) bool {
	atoms := f.Atoms()
	if len(atoms) <= 1 {
		return len(atoms) == 1
	}
	seen := Fragment(0).With(atoms[0])
	stack := []int{atoms[0]}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range atoms {
			if !seen.Has(j) && g.adj[i][j] {
				seen = seen.With(j)
				stack = append(stack, j)
			}
		}
	}
	return seen == f
}

// FragmentsJoin reports whether fragments a and b share a variable:
// either they overlap on an atom, or some atom of a is adjacent to some
// atom of b.
func (g *Graph) FragmentsJoin(a, b Fragment) bool {
	if a&b != 0 {
		return true
	}
	for i := 0; i < g.n; i++ {
		if a.Has(i) && g.Joins(i, b) {
			return true
		}
	}
	return false
}

// Valid reports whether c is a cover per Definition 3.3, with the no-
// cartesian-product strengthening: fragments non-empty and internally
// connected, union covering all atoms, no inclusion between fragments,
// and (if more than one) every fragment joining at least one other.
func (g *Graph) Valid(c Cover) bool {
	if len(c) == 0 {
		return false
	}
	all := Fragment(0)
	for i := 0; i < g.n; i++ {
		all = all.With(i)
	}
	if c.Union() != all {
		return false
	}
	for i, f := range c {
		if f == 0 || !g.FragmentConnected(f) {
			return false
		}
		for j, h := range c {
			if i != j && h.ContainsAll(f) {
				return false
			}
		}
	}
	if len(c) > 1 {
		for _, f := range c {
			joins := false
			for _, h := range c {
				if h != f && g.FragmentsJoin(f, h) {
					joins = true
					break
				}
			}
			if !joins {
				return false
			}
		}
	}
	return true
}

// Minimal reports whether every fragment covers at least one atom no
// other fragment covers (the minimal-cover bound the paper cites for the
// size of the search space).
func (c Cover) Minimal() bool {
	for i, f := range c {
		others := Fragment(0)
		for j, h := range c {
			if i != j {
				others |= h
			}
		}
		if others.ContainsAll(f) {
			return false
		}
	}
	return true
}

// WholeQuery returns the single-fragment cover (the UCQ reformulation's
// cover).
func WholeQuery(n int) Cover {
	f := Fragment(0)
	for i := 0; i < n; i++ {
		f = f.With(i)
	}
	return Cover{f}
}

// PerAtom returns the one-atom-per-fragment cover (the SCQ
// reformulation's cover).
func PerAtom(n int) Cover {
	c := make(Cover, n)
	for i := 0; i < n; i++ {
		c[i] = Single(i)
	}
	return c
}

// EnumerateMinimal enumerates every valid minimal cover of the query,
// calling visit for each; it stops early when visit returns false or
// after max covers (max <= 0 means unlimited) and reports whether the
// enumeration was exhaustive.
func (g *Graph) EnumerateMinimal(max int, visit func(Cover) bool) (exhaustive bool) {
	// Candidate fragments: every internally connected non-empty subset.
	var candidates []Fragment
	seen := make(map[Fragment]bool)
	var collect func(f Fragment)
	collect = func(f Fragment) {
		if seen[f] {
			return
		}
		seen[f] = true
		candidates = append(candidates, f)
		for i := 0; i < g.n; i++ {
			if !f.Has(i) && g.Joins(i, f) {
				collect(f.With(i))
			}
		}
	}
	for i := 0; i < g.n; i++ {
		collect(Single(i))
	}

	// Enumerate minimal set covers: branch on the lowest uncovered atom.
	// Different branch orders can assemble the same cover, so emitted
	// covers are deduplicated by canonical key. Two safeguards keep the
	// recursion tractable on wide queries (the paper's 10-atom DBLP
	// query, where exhaustive search becomes infeasible): minimality is
	// enforced *during* descent — adding a fragment that strips every
	// private atom from an already-chosen fragment is pruned immediately
	// — and the total number of visited search nodes is bounded, marking
	// the enumeration non-exhaustive when the bound trips.
	count := 0
	nodes := 0
	maxNodes := 1 << 22
	if max > 0 && max*256 > maxNodes {
		maxNodes = max * 256
	}
	exhaustive = true
	emitted := make(map[string]bool)
	var rec func(covered Fragment, chosen []Fragment) bool
	rec = func(covered Fragment, chosen []Fragment) bool {
		nodes++
		if nodes > maxNodes {
			exhaustive = false
			return false
		}
		if max > 0 && count >= max {
			exhaustive = false
			return false
		}
		first := -1
		for i := 0; i < g.n; i++ {
			if !covered.Has(i) {
				first = i
				break
			}
		}
		if first == -1 {
			c := NewCover(chosen...)
			if !c.Minimal() || !g.Valid(c) {
				return true
			}
			k := c.Key()
			if emitted[k] {
				return true
			}
			emitted[k] = true
			count++
			return visit(c)
		}
		for _, f := range candidates {
			if !f.Has(first) {
				continue
			}
			// Skip fragments fully covered already: they would be
			// redundant.
			if covered.ContainsAll(f) {
				continue
			}
			// Minimality pruning: every already-chosen fragment must
			// keep an atom that no other fragment (including f) covers.
			ok := true
			for i, gch := range chosen {
				others := f
				for j, h := range chosen {
					if j != i {
						others |= h
					}
				}
				if others.ContainsAll(gch) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if !rec(covered|f, append(chosen, f)) {
				return false
			}
		}
		return true
	}
	rec(0, nil)
	return exhaustive
}

// Query builds the cover query of fragment f w.r.t. query q
// (Definition 3.4): the fragment's atoms, with head variables being q's
// distinguished variables occurring in the fragment plus the variables
// shared with atoms outside the fragment. Head variables are emitted in
// increasing variable order, so equal fragments always produce identical
// cover queries.
func Query(q bgp.CQ, f Fragment) bgp.CQ {
	inVars := make(map[uint32]bool)
	outVars := make(map[uint32]bool)
	var buf []uint32
	for i, a := range q.Atoms {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if f.Has(i) {
				inVars[v] = true
			} else {
				outVars[v] = true
			}
		}
	}
	distinguished := make(map[uint32]bool)
	for _, h := range q.Head {
		if h.Var {
			distinguished[h.ID] = true
		}
	}
	var headIDs []uint32
	for v := range inVars {
		if distinguished[v] || outVars[v] {
			headIDs = append(headIDs, v)
		}
	}
	sort.Slice(headIDs, func(i, j int) bool { return headIDs[i] < headIDs[j] })

	sub := bgp.CQ{Head: make([]bgp.Term, 0, len(headIDs))}
	for _, v := range headIDs {
		sub.Head = append(sub.Head, bgp.V(v))
	}
	for _, i := range f.Atoms() {
		sub.Atoms = append(sub.Atoms, q.Atoms[i])
	}
	return sub
}
