package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniqueRegimes(t *testing.T) {
	p := DefaultParams
	small := p.Unique(100)
	if small != p.CL*100 {
		t.Errorf("in-memory dedup = %v, want %v", small, p.CL*100)
	}
	n := p.SpillThreshold * 4
	big := p.Unique(n)
	if big != p.CK*n*math.Log2(n) {
		t.Errorf("spilled dedup = %v, want n log n pricing", big)
	}
	if p.Unique(0) != 0 || p.Unique(-5) != 0 {
		t.Error("non-positive sizes must cost nothing")
	}
}

func TestJUCQSingleArmEqualsUCQ(t *testing.T) {
	p := DefaultParams
	arm := ArmStats{Arms: 10, ScanTuples: 1000, ResultTuples: 50}
	if got, want := p.JUCQ([]ArmStats{arm}, arm.ResultTuples), p.UCQ(arm); got != want {
		t.Errorf("JUCQ single arm %v != UCQ %v", got, want)
	}
}

func TestJUCQComponents(t *testing.T) {
	p := Params{CDB: 5, CT: 1, CJ: 2, CM: 3, CL: 4, CK: 1, SpillThreshold: 1e12}
	arms := []ArmStats{
		{Arms: 2, ScanTuples: 100, ResultTuples: 10},
		{Arms: 3, ScanTuples: 200, ResultTuples: 40}, // largest: pipelined
	}
	got := p.JUCQ(arms, 7)
	want := 5.0 + // c_db
		(1+2)*100 + 4*10 + // arm 1 eval + dedup
		(1+2)*200 + 4*40 + // arm 2 eval + dedup
		2*(10+40) + // arm join, linear
		3*10 + // materialize the smaller arm only
		4*7 // final dedup
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("JUCQ = %v, want %v", got, want)
	}
}

func TestNestedLoopArmJoinPricing(t *testing.T) {
	linear := DefaultParams
	nl := DefaultParams
	nl.NestedLoopArmJoin = true
	arms := []ArmStats{
		{ScanTuples: 10, ResultTuples: 10000},
		{ScanTuples: 10, ResultTuples: 20000},
	}
	if nl.JUCQ(arms, 10) <= linear.JUCQ(arms, 10) {
		t.Error("nested-loop pricing should exceed linear pricing on large arms")
	}
}

// Monotonicity: more scanned tuples, more result tuples, or more final
// tuples never makes a plan cheaper.
func TestMonotonicity(t *testing.T) {
	p := DefaultParams
	f := func(scan, res, extraScan, extraRes uint32) bool {
		base := ArmStats{ScanTuples: float64(scan % 1e6), ResultTuples: float64(res % 1e6)}
		bigger := ArmStats{
			ScanTuples:   base.ScanTuples + float64(extraScan%1e6),
			ResultTuples: base.ResultTuples + float64(extraRes%1e6),
		}
		other := ArmStats{ScanTuples: 50, ResultTuples: 5}
		c1 := p.JUCQ([]ArmStats{base, other}, 10)
		c2 := p.JUCQ([]ArmStats{bigger, other}, 10)
		return c2 >= c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyArms(t *testing.T) {
	p := DefaultParams
	if got := p.JUCQ(nil, 0); got != p.CDB {
		t.Errorf("empty JUCQ = %v, want the fixed overhead %v", got, p.CDB)
	}
}

func TestStringIncludesConstants(t *testing.T) {
	s := DefaultParams.String()
	if s == "" {
		t.Error("empty String")
	}
}

// Regression: |q| log|q| spill pricing with |q| < 2 used to go negative
// (log2(n) ≤ 0), and a NaN estimate slipped through the `n <= 0` guard,
// poisoning cover comparisons via NaN ordering.
func TestUniqueSpillEdgeCases(t *testing.T) {
	p := DefaultParams
	p.SpillThreshold = 0 // everything spills
	for _, n := range []float64{0.25, 0.5, 1, 1.5, 1.99} {
		if got := p.Unique(n); got < 0 || math.IsNaN(got) {
			t.Errorf("Unique(%v) = %v with zero spill threshold; want ≥ 0", n, got)
		}
		if got, min := p.Unique(n), p.CK*n; got < min {
			t.Errorf("Unique(%v) = %v, want at least one log factor %v", n, got, min)
		}
	}
	if got := p.Unique(math.NaN()); got != 0 {
		t.Errorf("Unique(NaN) = %v, want 0", got)
	}
	if got := p.Unique(math.Inf(-1)); got != 0 {
		t.Errorf("Unique(-Inf) = %v, want 0", got)
	}
}

// Regression: pricing covers containing zero-row arm estimates must stay
// finite, non-negative, and comparable even when dedup is forced to the
// spill regime.
func TestJUCQZeroRowArms(t *testing.T) {
	p := DefaultParams
	p.SpillThreshold = 0
	arms := []ArmStats{
		{Arms: 1, ScanTuples: 0, ResultTuples: 0},
		{Arms: 2, ScanTuples: 10, ResultTuples: 1},
	}
	got := p.JUCQ(arms, 0)
	if math.IsNaN(got) || got < p.CDB {
		t.Errorf("JUCQ with zero-row arms = %v, want finite ≥ c_db", got)
	}
	// A NaN-free model must give a total order: the zero-arm cover is
	// not more expensive than the same cover with extra work.
	more := p.JUCQ([]ArmStats{{Arms: 2, ScanTuples: 100, ResultTuples: 50}, arms[1]}, 40)
	if !(got <= more) {
		t.Errorf("zero-row cover (%v) should not exceed a strictly larger one (%v)", got, more)
	}
}

func TestForRepresentation(t *testing.T) {
	p := DefaultParams
	p.Provenance = "calibrated"
	p.Representation = "flat"
	p.DecodeRatio = 2.5

	frozen := p.ForRepresentation(true)
	if frozen.CT != p.CT*2.5 {
		t.Errorf("frozen CT = %v, want %v", frozen.CT, p.CT*2.5)
	}
	if frozen.Representation != "frozen" || frozen.Provenance != "calibrated+decode" {
		t.Errorf("frozen adjustment mislabeled: %+v", frozen)
	}
	// Round trip restores the original scan constant.
	back := frozen.ForRepresentation(false)
	if math.Abs(back.CT-p.CT) > 1e-12 {
		t.Errorf("round-trip CT = %v, want %v", back.CT, p.CT)
	}
	// Matching or unknown representation is a no-op.
	if q := p.ForRepresentation(false); q != p {
		t.Errorf("matching representation changed params: %v", q)
	}
	var unk Params
	if q := unk.ForRepresentation(true); q != unk {
		t.Errorf("unknown representation changed params: %v", q)
	}
	noRatio := p
	noRatio.DecodeRatio = 0
	if q := noRatio.ForRepresentation(true); q != noRatio {
		t.Errorf("unmeasured decode ratio changed params: %v", q)
	}
}
