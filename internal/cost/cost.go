// Package cost implements the cost model of the paper's Section 4.1: the
// estimated cost of evaluating a JUCQ reformulation through a relational
// engine, expressed over per-arm statistics (number of member CQs, total
// scanned tuples, estimated result size) and six calibrated constants.
//
// The model is (with q_k the largest-result arm, which is pipelined):
//
//	c(q_JUCQ) = c_db
//	          + Σ_i [ c_eval(qUCQ_i) ]           per-arm evaluation
//	          + c_join(qUCQ_1..m)                joining the arm results
//	          + c_mat(qUCQ_i, i≠k)               materializing all but q_k
//	          + c_unique(q_JUCQ)                 final duplicate elimination
//
//	c_eval(qUCQ)  = c_unique(qUCQ) + (c_t + c_j) · Σ_CQ Σ_{t∈CQ} |q_t|
//	c_join        = c_j · Σ_i |qUCQ_i|
//	c_mat         = c_m · Σ_{i≠k} |qUCQ_i|
//	c_unique(q)   = c_l · |q|                      (in-memory hashing)
//	              = c_k · |q| · log |q|            (past the spill threshold)
//
// The constants are engine-dependent; Calibrate fits them from timed
// micro-operations, reproducing the paper's per-RDBMS calibration queries.
package cost

import (
	"fmt"
	"math"
)

// Params holds the calibrated constants of the model for one engine.
type Params struct {
	CDB float64 // fixed per-query overhead (connection/setup)
	CT  float64 // per tuple scanned from an index
	CJ  float64 // per tuple entering or leaving a join
	CM  float64 // per tuple materialized
	CL  float64 // per tuple hashed for duplicate elimination
	CK  float64 // per tuple·log(tuples) once dedup spills to disk

	// SpillThreshold is the result size beyond which duplicate
	// elimination is priced as external (disk) sorting.
	SpillThreshold float64

	// NestedLoopArmJoin prices arm joins quadratically instead of
	// linearly — set for engine profiles without hash joins, where the
	// linear model of the paper badly underestimates SCQ-shaped plans.
	NestedLoopArmJoin bool
}

// DefaultParams is a neutral parameterization (all unit weights) that
// orders plans sensibly before any calibration has run.
var DefaultParams = Params{
	CDB:            1000,
	CT:             1.0,
	CJ:             1.0,
	CM:             1.0,
	CL:             1.0,
	CK:             0.2,
	SpillThreshold: 1 << 20,
}

// ArmStats summarizes one UCQ arm of a JUCQ for the model.
type ArmStats struct {
	// Arms is the number of member CQs (|qUCQ| as a union).
	Arms int64
	// ScanTuples is Σ_CQ Σ_{t∈CQ} |q_t|: tuples fetched to evaluate
	// every member.
	ScanTuples float64
	// ResultTuples is the estimated size of the arm's result.
	ResultTuples float64
}

// Unique prices duplicate elimination over n result tuples.
func (p Params) Unique(n float64) float64 {
	if n <= 0 {
		return 0
	}
	if n > p.SpillThreshold {
		return p.CK * n * math.Log2(n)
	}
	return p.CL * n
}

// JUCQ prices a join of UCQ arms. finalTuples is the estimated size of
// the overall (JUCQ) result, used for the final duplicate elimination;
// the original query's estimated cardinality is the natural value, since
// a JUCQ reformulation returns exactly the query's answer set.
func (p Params) JUCQ(arms []ArmStats, finalTuples float64) float64 {
	if len(arms) == 0 {
		return p.CDB
	}
	total := p.CDB

	// Per-arm evaluation: scans + in-arm joins + per-arm dedup.
	for _, a := range arms {
		total += (p.CT + p.CJ) * a.ScanTuples
		total += p.Unique(a.ResultTuples)
	}

	if len(arms) > 1 {
		// Arm join: linear in the inputs for hash/merge engines; the
		// product of the two largest inputs bounds nested-loop work.
		if p.NestedLoopArmJoin {
			first, second := 0.0, 0.0
			for _, a := range arms {
				if a.ResultTuples > first {
					first, second = a.ResultTuples, first
				} else if a.ResultTuples > second {
					second = a.ResultTuples
				}
			}
			total += p.CJ * first * math.Max(second, 1)
		} else {
			for _, a := range arms {
				total += p.CJ * a.ResultTuples
			}
		}

		// Materialization: every arm but the largest-result one, which
		// is pipelined.
		largest := 0
		for i, a := range arms {
			if a.ResultTuples > arms[largest].ResultTuples {
				largest = i
			}
		}
		for i, a := range arms {
			if i != largest {
				total += p.CM * a.ResultTuples
			}
		}
	}

	// Final duplicate elimination on the JUCQ result.
	total += p.Unique(finalTuples)
	return total
}

// UCQ prices a single-arm (plain union) reformulation.
func (p Params) UCQ(arm ArmStats) float64 {
	return p.JUCQ([]ArmStats{arm}, arm.ResultTuples)
}

// String renders the parameters compactly for reports.
func (p Params) String() string {
	return fmt.Sprintf("c_db=%.3g c_t=%.3g c_j=%.3g c_m=%.3g c_l=%.3g c_k=%.3g spill=%.3g nl=%v",
		p.CDB, p.CT, p.CJ, p.CM, p.CL, p.CK, p.SpillThreshold, p.NestedLoopArmJoin)
}
