// Package cost implements the cost model of the paper's Section 4.1: the
// estimated cost of evaluating a JUCQ reformulation through a relational
// engine, expressed over per-arm statistics (number of member CQs, total
// scanned tuples, estimated result size) and six calibrated constants.
//
// The model is (with q_k the largest-result arm, which is pipelined):
//
//	c(q_JUCQ) = c_db
//	          + Σ_i [ c_eval(qUCQ_i) ]           per-arm evaluation
//	          + c_join(qUCQ_1..m)                joining the arm results
//	          + c_mat(qUCQ_i, i≠k)               materializing all but q_k
//	          + c_unique(q_JUCQ)                 final duplicate elimination
//
//	c_eval(qUCQ)  = c_unique(qUCQ) + (c_t + c_j) · Σ_CQ Σ_{t∈CQ} |q_t|
//	c_join        = c_j · Σ_i |qUCQ_i|
//	c_mat         = c_m · Σ_{i≠k} |qUCQ_i|
//	c_unique(q)   = c_l · |q|                      (in-memory hashing)
//	              = c_k · |q| · log |q|            (past the spill threshold)
//
// The constants are engine-dependent; Calibrate fits them from timed
// micro-operations, reproducing the paper's per-RDBMS calibration queries.
package cost

import (
	"fmt"
	"math"
)

// Params holds the calibrated constants of the model for one engine.
type Params struct {
	CDB float64 // fixed per-query overhead (connection/setup)
	CT  float64 // per tuple scanned from an index
	CJ  float64 // per tuple entering or leaving a join
	CM  float64 // per tuple materialized
	CL  float64 // per tuple hashed for duplicate elimination
	CK  float64 // per tuple·log(tuples) once dedup spills to disk

	// SpillThreshold is the result size beyond which duplicate
	// elimination is priced as external (disk) sorting.
	SpillThreshold float64

	// NestedLoopArmJoin prices arm joins quadratically instead of
	// linearly — set for engine profiles without hash joins, where the
	// linear model of the paper badly underestimates SCQ-shaped plans.
	NestedLoopArmJoin bool

	// Provenance records how the constants were obtained ("default",
	// "calibrated", "calibrated+decode", "feedback", ...) so reports and
	// tests can tell a fitted model from the neutral one.
	Provenance string

	// Representation is the storage representation the constants were
	// measured against: "" (unknown), "flat", or "frozen" (the
	// compressed block-columnar store). ForRepresentation uses it to
	// decide whether a decode adjustment applies.
	Representation string

	// DecodeRatio is the measured per-tuple scan-cost ratio
	// frozen/flat (> 1 when decoding compressed blocks is slower than
	// walking the flat arrays). 0 means unmeasured.
	DecodeRatio float64
}

// DefaultParams is a neutral parameterization (all unit weights) that
// orders plans sensibly before any calibration has run.
var DefaultParams = Params{
	CDB:            1000,
	CT:             1.0,
	CJ:             1.0,
	CM:             1.0,
	CL:             1.0,
	CK:             0.2,
	SpillThreshold: 1 << 20,
	Provenance:     "default",
}

// ForRepresentation adjusts the constants for the store representation
// they will actually price. When the parameters were measured against
// the other representation and a decode ratio is known, the per-tuple
// scan constant is scaled by it (frozen scans decode compressed blocks,
// flat scans walk arrays directly); otherwise p is returned unchanged.
// The adjustment is a uniform positive scale on one constant, so it
// never produces NaN or negative costs.
func (p Params) ForRepresentation(frozen bool) Params {
	want := "flat"
	if frozen {
		want = "frozen"
	}
	if p.Representation == "" || p.Representation == want || p.DecodeRatio <= 0 {
		return p
	}
	if frozen {
		p.CT *= p.DecodeRatio
	} else {
		p.CT /= p.DecodeRatio
	}
	p.Representation = want
	if p.Provenance != "" {
		p.Provenance += "+decode"
	}
	return p
}

// ArmStats summarizes one UCQ arm of a JUCQ for the model.
type ArmStats struct {
	// Arms is the number of member CQs (|qUCQ| as a union).
	Arms int64
	// ScanTuples is Σ_CQ Σ_{t∈CQ} |q_t|: tuples fetched to evaluate
	// every member.
	ScanTuples float64
	// ResultTuples is the estimated size of the arm's result.
	ResultTuples float64
}

// Unique prices duplicate elimination over n result tuples.
//
// Two edge cases matter here. A NaN estimate must not leak through: NaN
// fails every comparison, so `n <= 0` would NOT catch it and the NaN
// would poison cover cost comparisons (NaN ordering makes min-cost
// selection arbitrary). And past the spill threshold, log2(n) ≤ 0 for
// n < 2 — reachable with a tiny or zero SpillThreshold, e.g. during
// calibration or feedback blending — which would price dedup negatively.
// Both are clamped: non-positive (or NaN) sizes cost 0, and the spill
// branch charges at least one log factor per tuple.
func (p Params) Unique(n float64) float64 {
	if !(n > 0) { // catches NaN as well as n <= 0
		return 0
	}
	if n > p.SpillThreshold {
		return p.CK * n * math.Max(math.Log2(n), 1)
	}
	return p.CL * n
}

// JUCQ prices a join of UCQ arms. finalTuples is the estimated size of
// the overall (JUCQ) result, used for the final duplicate elimination;
// the original query's estimated cardinality is the natural value, since
// a JUCQ reformulation returns exactly the query's answer set.
func (p Params) JUCQ(arms []ArmStats, finalTuples float64) float64 {
	if len(arms) == 0 {
		return p.CDB
	}
	total := p.CDB

	// Per-arm evaluation: scans + in-arm joins + per-arm dedup.
	for _, a := range arms {
		total += (p.CT + p.CJ) * a.ScanTuples
		total += p.Unique(a.ResultTuples)
	}

	if len(arms) > 1 {
		// Arm join: linear in the inputs for hash/merge engines; the
		// product of the two largest inputs bounds nested-loop work.
		if p.NestedLoopArmJoin {
			first, second := 0.0, 0.0
			for _, a := range arms {
				if a.ResultTuples > first {
					first, second = a.ResultTuples, first
				} else if a.ResultTuples > second {
					second = a.ResultTuples
				}
			}
			total += p.CJ * first * math.Max(second, 1)
		} else {
			for _, a := range arms {
				total += p.CJ * a.ResultTuples
			}
		}

		// Materialization: every arm but the largest-result one, which
		// is pipelined.
		largest := 0
		for i, a := range arms {
			if a.ResultTuples > arms[largest].ResultTuples {
				largest = i
			}
		}
		for i, a := range arms {
			if i != largest {
				total += p.CM * a.ResultTuples
			}
		}
	}

	// Final duplicate elimination on the JUCQ result.
	total += p.Unique(finalTuples)
	return total
}

// UCQ prices a single-arm (plain union) reformulation.
func (p Params) UCQ(arm ArmStats) float64 {
	return p.JUCQ([]ArmStats{arm}, arm.ResultTuples)
}

// String renders the parameters compactly for reports.
func (p Params) String() string {
	s := fmt.Sprintf("c_db=%.3g c_t=%.3g c_j=%.3g c_m=%.3g c_l=%.3g c_k=%.3g spill=%.3g nl=%v",
		p.CDB, p.CT, p.CJ, p.CM, p.CL, p.CK, p.SpillThreshold, p.NestedLoopArmJoin)
	if p.Provenance != "" {
		s += " src=" + p.Provenance
	}
	if p.Representation != "" {
		s += " repr=" + p.Representation
	}
	return s
}
