package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bgp"
)

func entry(key string, storeV, schemaS uint64) *Entry {
	return &Entry{Key: key, Strategy: "gcov", StoreVersion: storeV, SchemaStamp: schemaS}
}

func TestGetPutBasics(t *testing.T) {
	c := New(0)
	if e, out := c.Get("k", 1, 2); e != nil || out != Miss {
		t.Fatalf("empty cache Get = (%v, %v), want (nil, Miss)", e, out)
	}
	c.Put(entry("k", 1, 2))
	e, out := c.Get("k", 1, 2)
	if out != Hit || e == nil || e.Key != "k" {
		t.Fatalf("Get after Put = (%v, %v), want hit", e, out)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("counters = %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Replacing under the same key keeps one entry.
	c.Put(entry("k", 1, 2))
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", c.Len())
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	c := New(0)
	c.Put(entry("k", 5, 7))

	// Store moved on: stale, and the entry is gone afterwards.
	if e, out := c.Get("k", 6, 7); e != nil || out != Stale {
		t.Fatalf("store-version mismatch Get = (%v, %v), want (nil, Stale)", e, out)
	}
	if e, out := c.Get("k", 5, 7); out != Miss || e != nil {
		t.Fatalf("stale entry not dropped: Get = (%v, %v)", e, out)
	}

	// Schema moved on: same contract.
	c.Put(entry("k", 5, 7))
	if _, out := c.Get("k", 5, 8); out != Stale {
		t.Fatalf("schema-stamp mismatch outcome = %v, want Stale", out)
	}

	st := c.Snapshot()
	if st.Invalidations != 2 {
		t.Fatalf("Invalidations = %d, want 2", st.Invalidations)
	}
	if st.Lookups() != st.Hits+st.Misses+st.Invalidations {
		t.Fatal("Lookups accounting broken")
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity numShards*2 gives every shard room for 2 entries; filling
	// one shard past that must evict its least recently used key.
	c := New(numShards * 2)
	sh := c.shardFor("seed")
	var keys []string
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == sh {
			keys = append(keys, k)
		}
	}
	c.Put(entry(keys[0], 1, 1))
	c.Put(entry(keys[1], 1, 1))
	// Touch keys[0] so keys[1] is the LRU, then overflow the shard.
	if _, out := c.Get(keys[0], 1, 1); out != Hit {
		t.Fatal("priming hit failed")
	}
	c.Put(entry(keys[2], 1, 1))

	if _, out := c.Get(keys[1], 1, 1); out != Miss {
		t.Fatalf("LRU key %q survived eviction (outcome %v)", keys[1], out)
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, out := c.Get(k, 1, 1); out != Hit {
			t.Fatalf("recently used key %q evicted", k)
		}
	}
	if ev := c.Snapshot().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d, want 1", ev)
	}
}

// The signature must unify exactly the queries whose plans transfer:
// isomorphic modulo renaming/reordering, same strategy.
func TestSignature(t *testing.T) {
	q1 := bgp.CQ{Head: []bgp.Term{bgp.V(0)}, Atoms: []bgp.Atom{
		{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)},
		{S: bgp.V(1), P: bgp.C(11), O: bgp.V(2)},
	}}
	q2 := bgp.CQ{Head: []bgp.Term{bgp.V(5)}, Atoms: []bgp.Atom{
		{S: bgp.V(8), P: bgp.C(11), O: bgp.V(9)},
		{S: bgp.V(5), P: bgp.C(10), O: bgp.V(8)},
	}}
	if Signature("gcov", q1) != Signature("gcov", q2) {
		t.Fatal("renamed+reordered query got a different signature")
	}
	if Signature("gcov", q1) == Signature("ucq", q1) {
		t.Fatal("strategies share a signature")
	}
	q3 := bgp.CQ{Head: []bgp.Term{bgp.V(0)}, Atoms: q1.Atoms[:1]}
	if Signature("gcov", q1) == Signature("gcov", q3) {
		t.Fatal("different queries share a signature")
	}
}

// Concurrent readers, writers and an invalidating version bump; run under
// -race this is the concurrency contract.
func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", i%100)
				v := uint64(i % 3) // rotating versions force stale paths
				if e, out := c.Get(k, v, 0); out == Hit {
					if e.StoreVersion != v {
						t.Errorf("hit returned version %d, asked %d", e.StoreVersion, v)
					}
				} else {
					c.Put(entry(k, v, 0))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Puts == 0 || st.Lookups() == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
	if c.Len() > 64+numShards { // per-shard rounding slack
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}
