// Package plancache implements a bounded, concurrent cache of the
// per-query artifacts of reformulation-based query answering: the chosen
// cover, the per-fragment reformulations, and the fragment statistics the
// cost model priced them with. Re-optimizing an identical query (modulo
// variable renaming and atom reordering — see the signature below) is
// pure waste on a server answering a heavy query stream, which is the
// ROADMAP scenario this package serves.
//
// # Signature
//
// Entries are keyed by bgp.CQ.CanonicalKey, a rendering of the query that
// is invariant under variable renaming and body-atom reordering, prefixed
// by the answering strategy. Two queries with equal signatures are
// isomorphic, so the cached cover and reformulations — whose choice
// depends only on the query shape, the schema, and the data statistics —
// transfer between them wholesale.
//
// # Invalidation
//
// Cached plans are only as valid as the statistics and schema they were
// computed from. Every entry records the storage.Store mutation version
// and the schema.Closed content stamp that held when planning *started*;
// Get rejects (and drops) an entry whose recorded pair differs from the
// caller's current pair. Recording the version from before planning makes
// a concurrent mutation invalidate conservatively: the entry can only be
// stamped with a version that is too old, never too new.
//
// All methods are safe for concurrent use; the cache is sharded so
// concurrent lookups of different queries do not contend on one mutex.
// Entries are treated as immutable after Put.
package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/bgp"
	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/reformulate"
)

// Signature returns the cache key for answering q under the given
// strategy tag: the tag plus the canonical (renaming- and order-
// invariant) form of the query.
func Signature(strategy string, q bgp.CQ) string {
	return strategy + "\x00" + q.CanonicalKey()
}

// Fragment is the cached artifact of one cover fragment: the fragment's
// subquery, its reformulation, and the statistics the cost model derived
// for it. The reformulation is shared, not copied — Reformulations are
// immutable once built.
type Fragment struct {
	CQ     bgp.CQ
	Ref    *reformulate.Reformulation
	NumCQs int64
	// Stats are the *raw* (uncorrected) arm estimates; feedback
	// corrections are applied at pricing time, so re-pricing a cached
	// plan under new correction factors starts from the same base.
	Stats cost.ArmStats
	// Key is the fragment subquery's canonical key — the feedback
	// loop's correction-factor key ("" when no loop is configured).
	Key string
}

// Entry is one cached plan. All fields are read-only after Put.
type Entry struct {
	Key      string
	Strategy string

	// Validity window: the store version and schema stamp that held when
	// the plan was computed.
	StoreVersion uint64
	SchemaStamp  uint64

	// FeedbackVersion is the adaptive-cost drift version the estimates
	// were priced under (0 without a feedback loop). Unlike the pair
	// above it does not invalidate the plan — the cover and
	// reformulations stay valid — but a hit under a newer version must
	// re-price the estimates from the raw stats before replaying them
	// (Cache.Reprice).
	FeedbackVersion uint64

	// The plan itself.
	Head      []uint32 // head variables of the query the plan answers
	Cover     cover.Cover
	Fragments []Fragment

	// QueryKey is the whole query's canonical key — the feedback key of
	// the final-cardinality correction ("" when no loop is configured).
	QueryKey string

	// Optimizer report fields, replayed on a hit.
	EstimatedCost float64
	// EstimatedRows is the (corrected) final-cardinality estimate;
	// RawRows is the uncorrected one re-pricing starts from.
	EstimatedRows  float64
	RawRows        float64
	CoversExplored int
	Exhaustive     bool
	TotalCQs       int64
	FragmentCQs    []int64
}

// Outcome classifies a Get.
type Outcome uint8

const (
	// Miss: no entry under the key.
	Miss Outcome = iota
	// Hit: a current entry was found.
	Hit
	// Stale: an entry existed but its (StoreVersion, SchemaStamp) pair
	// did not match the caller's; it was removed.
	Stale
)

// DefaultCapacity is the entry capacity New uses for capacity <= 0.
const DefaultCapacity = 1024

const numShards = 16

type shard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element // value: *Entry
	lru *list.List               // front = most recently used
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits          int64
	Misses        int64
	Invalidations int64 // stale entries dropped by Get
	Evictions     int64 // entries displaced by capacity
	Puts          int64
	Reprices      int64 // entries refreshed by Reprice after feedback drift
}

// Lookups returns the total number of Get calls the snapshot covers.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses + s.Invalidations }

// HitRate returns Hits / Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Cache is a sharded LRU plan cache. The zero value is not usable; use New.
//
//lint:cache plancache
type Cache struct {
	shards [numShards]shard

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64
	puts          atomic.Int64
	reprices      atomic.Int64
}

// New returns a cache holding up to capacity entries (DefaultCapacity if
// capacity <= 0), spread over its shards.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{}
	for i := range c.shards {
		//lint:ignore lockguard construction: the cache is not shared until New returns
		c.shards[i].cap = per
		//lint:ignore lockguard construction: the cache is not shared until New returns
		c.shards[i].m = make(map[string]*list.Element)
		//lint:ignore lockguard construction: the cache is not shared until New returns
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor picks the shard of a key (FNV-1a over the key bytes).
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%numShards]
}

// Get returns the entry under key if it exists and was computed at
// exactly (storeVersion, schemaStamp). A present entry with any other
// version pair is removed and reported as Stale.
func (c *Cache) Get(key string, storeVersion, schemaStamp uint64) (*Entry, Outcome) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, Miss
	}
	e := el.Value.(*Entry)
	if e.StoreVersion != storeVersion || e.SchemaStamp != schemaStamp {
		sh.lru.Remove(el)
		delete(sh.m, key)
		sh.mu.Unlock()
		c.invalidations.Add(1)
		return nil, Stale
	}
	sh.lru.MoveToFront(el)
	sh.mu.Unlock()
	c.hits.Add(1)
	return e, Hit
}

// Put inserts the entry under e.Key, displacing any previous entry for
// the key and evicting the least recently used entry of a full shard.
// Entries with an empty key are ignored.
func (c *Cache) Put(e *Entry) {
	if e == nil || e.Key == "" {
		return
	}
	sh := c.shardFor(e.Key)
	sh.mu.Lock()
	if el, ok := sh.m[e.Key]; ok {
		el.Value = e
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		c.puts.Add(1)
		return
	}
	sh.m[e.Key] = sh.lru.PushFront(e)
	var evicted bool
	if sh.lru.Len() > sh.cap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.m, oldest.Value.(*Entry).Key)
		evicted = true
	}
	sh.mu.Unlock()
	c.puts.Add(1)
	if evicted {
		c.evictions.Add(1)
	}
}

// Reprice replaces the entry under e.Key with e — a copy of a cached
// plan whose estimates were recomputed under newer feedback correction
// factors (e carries the feedback version it was re-priced under). It
// shares Put's insertion path, so a racing eviction or displacement
// resolves like any other put; only the dedicated counter differs.
func (c *Cache) Reprice(e *Entry) {
	if e == nil || e.Key == "" {
		return
	}
	c.Put(e)
	c.reprices.Add(1)
	c.puts.Add(-1) // Put counted it; report it as a re-price instead
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns the current counter values.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Evictions:     c.evictions.Load(),
		Puts:          c.puts.Load(),
		Reprices:      c.reprices.Load(),
	}
}
