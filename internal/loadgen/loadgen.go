// Package loadgen drives an rdfserver with a mixed query workload and
// measures throughput and latency.
//
// Two driving disciplines are supported. The closed loop runs a fixed
// number of workers, each issuing its next query as soon as the previous
// answer returns — it measures the server's capacity. The open loop
// (TargetQPS > 0) releases requests on a fixed schedule regardless of
// how fast answers come back — it measures latency at a given offered
// load, and counts a tick as dropped when every worker is still busy,
// instead of letting a slow server shrink the offered rate (coordinated
// omission).
//
// Latencies are recorded in a logarithmic histogram (about 3% relative
// resolution) and reported as p50/p95/p99/max; counters distinguish
// answered (200), rejected (429, admission control working as designed)
// and failed (anything else) requests.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mathbits "math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Query is one workload element: a named SPARQL query with an optional
// strategy override.
type Query struct {
	Name     string `json:"name"`
	Text     string `json:"-"`
	Strategy string `json:"strategy,omitempty"`
}

// Config describes a load generation run.
type Config struct {
	// URL is the server base URL (e.g. http://127.0.0.1:8080). Required.
	URL string
	// Queries is the workload mix, issued round-robin per worker.
	// Required (at least one).
	Queries []Query
	// Duration is how long to drive load (default 5s).
	Duration time.Duration
	// Concurrency is the worker count (default 8).
	Concurrency int
	// TargetQPS switches to the open loop at this offered rate; 0 runs
	// the closed loop.
	TargetQPS float64
	// Mutators is the number of clients continuously adding and
	// removing noise triples through POST /update while the query
	// workload runs (default 0).
	Mutators int
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
}

// LatencyStats are latency percentiles in milliseconds over answered
// requests.
type LatencyStats struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Result is the outcome of a run.
type Result struct {
	// Requests counts every query request issued.
	Requests int64 `json:"requests"`
	// Answered counts 200s; Rejected 429s (admission control); Failed
	// everything else, including transport errors.
	Answered int64 `json:"answered"`
	Rejected int64 `json:"rejected"`
	Failed   int64 `json:"failed"`
	// Dropped counts open-loop ticks skipped because every worker was
	// busy — offered load the server never saw.
	Dropped int64 `json:"dropped"`
	// Mutations counts completed update round-trips.
	Mutations int64 `json:"mutations"`
	// Duration is the measured wall-clock span of the run.
	Duration time.Duration `json:"duration_ns"`
	// QPS is Answered divided by Duration.
	QPS float64 `json:"qps"`
	// Latency summarizes answered-request latencies.
	Latency LatencyStats `json:"latency"`
	// StatusCounts maps HTTP status (0 for transport errors) to count.
	StatusCounts map[int]int64 `json:"status_counts"`
}

// hist is a logarithmic latency histogram: bucket i covers
// [base*growth^i, base*growth^(i+1)) with base 1µs and growth 2^(1/16)
// (≈ 4.4% relative error), spanning 1µs to beyond an hour in 512
// buckets. Each worker owns one, merged after the run — no contention.
type hist struct {
	buckets [histBuckets]int64
	max     time.Duration
	n       int64
}

const (
	histGrowth  = 16 // sub-buckets per octave
	histBuckets = 512
)

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	// index ≈ histGrowth * log2(us): the octave is the bit length, the
	// sub-bucket a linear interpolation within the octave.
	octave := mathbits.Len64(uint64(us)) - 1
	frac := 0
	if octave > 0 {
		frac = int(((us - (1 << octave)) * histGrowth) >> octave)
	}
	i := octave*histGrowth + frac
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

func bucketUpperMS(i int) float64 {
	octave := i / histGrowth
	frac := i % histGrowth
	us := math.Exp2(float64(octave) + (float64(frac)+1)/histGrowth)
	return us / 1000
}

func (h *hist) record(d time.Duration) {
	h.buckets[bucketOf(d)]++
	h.n++
	if d > h.max {
		h.max = d
	}
}

func (h *hist) merge(o *hist) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// percentile returns the upper bound of the bucket holding the q-th
// quantile (0 < q <= 1), in milliseconds.
func (h *hist) percentile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return bucketUpperMS(i)
		}
	}
	return float64(h.max) / float64(time.Millisecond)
}

func (h *hist) stats() LatencyStats {
	return LatencyStats{
		P50: h.percentile(0.50),
		P95: h.percentile(0.95),
		P99: h.percentile(0.99),
		Max: float64(h.max) / float64(time.Millisecond),
	}
}

type counters struct {
	requests  atomic.Int64
	answered  atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64
	dropped   atomic.Int64
	mutations atomic.Int64
}

// Run drives the configured load and reports the measured result.
func Run(cfg Config) (Result, error) {
	if cfg.URL == "" {
		return Result{}, errors.New("loadgen: Config.URL is required")
	}
	if len(cfg.Queries) == 0 {
		return Result{}, errors.New("loadgen: Config.Queries must name at least one query")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: cfg.Timeout}

	var (
		ctrs     counters
		mu       sync.Mutex
		total    hist
		statuses = make(map[int]int64)
	)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancel()

	// tickets is nil in the closed loop (workers self-pace); in the open
	// loop a pacer goroutine feeds it at TargetQPS and counts drops.
	var tickets chan struct{}
	var pacerWG sync.WaitGroup
	if cfg.TargetQPS > 0 {
		tickets = make(chan struct{}, cfg.Concurrency)
		interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
		if interval <= 0 {
			interval = time.Microsecond
		}
		pacerWG.Add(1)
		go func() {
			defer pacerWG.Done()
			defer close(tickets)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tickets <- struct{}{}:
					default:
						ctrs.dropped.Add(1)
					}
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local hist
			localStatus := make(map[int]int64)
			for i := w; ; i++ {
				if tickets != nil {
					if _, ok := <-tickets; !ok {
						break
					}
				} else if ctx.Err() != nil {
					break
				}
				q := cfg.Queries[i%len(cfg.Queries)]
				code, d := issue(ctx, client, cfg.URL, q)
				if code == 0 && ctx.Err() != nil {
					// The run's own deadline aborted this request mid-flight;
					// that is an artifact of stopping, not a server failure.
					break
				}
				ctrs.requests.Add(1)
				localStatus[code]++
				switch code {
				case http.StatusOK:
					ctrs.answered.Add(1)
					local.record(d)
				case http.StatusTooManyRequests:
					ctrs.rejected.Add(1)
				default:
					ctrs.failed.Add(1)
				}
			}
			mu.Lock()
			total.merge(&local)
			for c, n := range localStatus {
				statuses[c] += n
			}
			mu.Unlock()
		}(w)
	}
	for m := 0; m < cfg.Mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				if mutate(ctx, client, cfg.URL, m, i) {
					ctrs.mutations.Add(1)
				}
			}
		}(m)
	}
	wg.Wait()
	pacerWG.Wait()
	elapsed := time.Since(start)

	res := Result{
		Requests:     ctrs.requests.Load(),
		Answered:     ctrs.answered.Load(),
		Rejected:     ctrs.rejected.Load(),
		Failed:       ctrs.failed.Load(),
		Dropped:      ctrs.dropped.Load(),
		Mutations:    ctrs.mutations.Load(),
		Duration:     elapsed,
		Latency:      total.stats(),
		StatusCounts: statuses,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.QPS = float64(res.Answered) / s
	}
	return res, nil
}

// issue posts one query and returns the HTTP status (0 on transport
// error) and the round-trip latency.
func issue(ctx context.Context, client *http.Client, base string, q Query) (int, time.Duration) {
	body, err := json.Marshal(map[string]string{"query": q.Text, "strategy": q.Strategy})
	if err != nil {
		return 0, 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, time.Since(start)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if cerr := resp.Body.Close(); cerr != nil {
			return 0, time.Since(start)
		}
		return 0, time.Since(start)
	}
	if err := resp.Body.Close(); err != nil {
		return 0, time.Since(start)
	}
	return resp.StatusCode, time.Since(start)
}

// mutate posts one add/remove round-trip of a unique noise triple that
// no benchmark query matches, reporting whether both requests succeeded.
func mutate(ctx context.Context, client *http.Client, base string, m, i int) bool {
	nt := fmt.Sprintf("<http://loadgen.invalid/junk-%d-%d> <http://loadgen.invalid/noise> <http://loadgen.invalid/x> .\n", m, i)
	for _, op := range []string{"add", "remove"} {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/update?op="+op, bytes.NewReader([]byte(nt)))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/n-triples")
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		_, cpErr := io.Copy(io.Discard, resp.Body)
		closeErr := resp.Body.Close()
		if cpErr != nil || closeErr != nil || resp.StatusCode != http.StatusOK {
			return false
		}
	}
	return true
}
