package repro_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/dblp"
	"repro/internal/lubm"
	"repro/internal/ntriples"
	"repro/internal/rdf"
)

// lubmStore builds a frozen, saturated tiny-LUBM store.
func lubmStore(t testing.TB, nUniv int) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	if err := st.AddAll(lubm.Ontology()); err != nil {
		t.Fatal(err)
	}
	lubm.Generate(nUniv, 42, lubm.Tiny(), func(tr rdf.Triple) { st.MustAdd(tr) })
	st.Saturate()
	return st
}

func dblpStore(t testing.TB, nPubs int) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	if err := st.AddAll(dblp.Ontology()); err != nil {
		t.Fatal(err)
	}
	dblp.Generate(nPubs, 7, func(tr rdf.Triple) { st.MustAdd(tr) })
	st.Saturate()
	return st
}

func rowsKey(res *repro.Result) string {
	keys := make([]string, res.NumRows())
	for i, row := range res.Rows() {
		var b strings.Builder
		for _, term := range row {
			b.WriteString(term.Canonical())
			b.WriteByte('|')
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// All 28 LUBM queries must return identical answers under every strategy
// on the Native profile.
func TestLUBMStrategiesAgree(t *testing.T) {
	st := lubmStore(t, 1)
	a := st.NewAnswerer(repro.Native, repro.Options{})
	for _, spec := range lubm.Queries() {
		var want string
		for i, strat := range []repro.Strategy{repro.Saturation, repro.GCov, repro.SCQ, repro.ECov, repro.UCQ} {
			res, err := a.Query(spec.Text, strat)
			if err != nil {
				t.Fatalf("%s via %s: %v", spec.Name, strat, err)
			}
			k := rowsKey(res)
			if i == 0 {
				want = k
				if res.NumRows() == 0 {
					t.Logf("note: %s returns no rows on the tiny dataset", spec.Name)
				}
				continue
			}
			if k != want {
				t.Errorf("%s: %s answers differ from saturation (%d rows vs %d)",
					spec.Name, strat, res.NumRows(), strings.Count(want, "\n")+1)
			}
		}
	}
}

// All 10 DBLP queries must agree across strategies.
func TestDBLPStrategiesAgree(t *testing.T) {
	st := dblpStore(t, 400)
	a := st.NewAnswerer(repro.Native, repro.Options{})
	for _, spec := range dblp.Queries() {
		strategies := []repro.Strategy{repro.Saturation, repro.GCov, repro.SCQ}
		if spec.Name != "Q10" { // ECov's space on 10 atoms is enormous; bounded below in its own test
			strategies = append(strategies, repro.ECov)
		}
		if spec.Name != "Q08" && spec.Name != "Q10" { // huge UCQs are exercised at bench scale
			strategies = append(strategies, repro.UCQ)
		}
		var want string
		for i, strat := range strategies {
			res, err := a.Query(spec.Text, strat)
			if err != nil {
				t.Fatalf("%s via %s: %v", spec.Name, strat, err)
			}
			if i == 0 {
				want = rowsKey(res)
				continue
			}
			if rowsKey(res) != want {
				t.Errorf("%s: %s answers differ from saturation", spec.Name, strat)
			}
		}
	}
}

// The reformulation sizes of the query sets must span the paper's range:
// |q_ref| = 1 for leaf-class queries up to hundreds of thousands for the
// two-type-variable queries.
func TestReformulationSizeSpread(t *testing.T) {
	st := lubmStore(t, 1)
	a := st.NewAnswerer(repro.Native, repro.Options{})
	sizes := make(map[string]int64)
	for _, spec := range lubm.Queries() {
		rep, err := a.Explain(spec.Text, repro.UCQ)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		sizes[spec.Name] = rep.TotalCQs
		t.Logf("%s: |q_ref| = %d", spec.Name, rep.TotalCQs)
	}
	if sizes["Q10"] != 1 || sizes["Q14"] != 1 {
		t.Errorf("Q10 and Q14 should have single-CQ reformulations: %d, %d", sizes["Q10"], sizes["Q14"])
	}
	if sizes["Q01"] < 500 {
		t.Errorf("Q01 (motivating example 1) |q_ref| = %d, want thousands", sizes["Q01"])
	}
	if sizes["Q02"] < 50_000 {
		t.Errorf("Q02 (motivating example 2) |q_ref| = %d, want hundreds of thousands", sizes["Q02"])
	}
	if sizes["Q28"] < 50_000 {
		t.Errorf("Q28 |q_ref| = %d, want hundreds of thousands", sizes["Q28"])
	}
}

// Store lifecycle: N-Triples round trip, freeze semantics, incremental
// additions after freeze.
func TestStoreLifecycle(t *testing.T) {
	st := repro.NewStore()
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/Book"), rdf.SubClassOf, rdf.NewIRI("http://x/Pub")))
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/b1"), rdf.Type, rdf.NewIRI("http://x/Book")))
	st.Freeze()
	st.Saturate()

	a := st.NewAnswerer(repro.Native, repro.Options{})
	q := `SELECT ?x WHERE { ?x rdf:type <http://x/Pub> }`
	res, err := a.Query(q, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("got %d rows, want 1", res.NumRows())
	}

	// Post-freeze data addition must be visible to both strategies.
	st.MustAdd(rdf.NewTriple(rdf.NewIRI("http://x/b2"), rdf.Type, rdf.NewIRI("http://x/Book")))
	for _, strat := range []repro.Strategy{repro.GCov, repro.Saturation} {
		res, err := a.Query(q, strat)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 2 {
			t.Errorf("%s sees %d rows after incremental add, want 2", strat, res.NumRows())
		}
	}

	// Post-freeze schema change must be rejected.
	err = st.Add(rdf.NewTriple(rdf.NewIRI("http://x/Pub"), rdf.SubClassOf, rdf.NewIRI("http://x/Thing")))
	if err == nil {
		t.Error("schema change after freeze accepted")
	}
}

// Retracting a data triple must shrink both stores, including the
// implicit consequences that lose their last derivation.
func TestStoreRemove(t *testing.T) {
	st := repro.NewStore()
	book := rdf.NewIRI("http://x/Book")
	pub := rdf.NewIRI("http://x/Pub")
	st.MustAdd(rdf.NewTriple(book, rdf.SubClassOf, pub))
	b1 := rdf.NewIRI("http://x/b1")
	b2 := rdf.NewIRI("http://x/b2")
	st.MustAdd(rdf.NewTriple(b1, rdf.Type, book))
	st.MustAdd(rdf.NewTriple(b2, rdf.Type, book))
	st.Saturate()

	a := st.NewAnswerer(repro.Native, repro.Options{})
	q := `SELECT ?x WHERE { ?x rdf:type <http://x/Pub> }`
	for _, strat := range []repro.Strategy{repro.GCov, repro.Saturation} {
		res, err := a.Query(q, strat)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 2 {
			t.Fatalf("%s: %d rows before removal, want 2", strat, res.NumRows())
		}
	}

	removed, err := st.Remove(rdf.NewTriple(b1, rdf.Type, book))
	if err != nil || !removed {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	for _, strat := range []repro.Strategy{repro.GCov, repro.Saturation} {
		res, err := a.Query(q, strat)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Errorf("%s: %d rows after removal, want 1", strat, res.NumRows())
		}
	}

	// Removing an absent triple reports false; removing a constraint is
	// rejected.
	if removed, _ := st.Remove(rdf.NewTriple(b1, rdf.Type, book)); removed {
		t.Error("second removal reported success")
	}
	if _, err := st.Remove(rdf.NewTriple(book, rdf.SubClassOf, pub)); err == nil {
		t.Error("constraint removal accepted after freeze")
	}
}

// ASK queries flow through the whole stack: a boolean question that is
// true only via reasoning must be answered true by every strategy.
func TestAskQueries(t *testing.T) {
	st := lubmStore(t, 1)
	a := st.NewAnswerer(repro.Native, repro.Options{})
	yes := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		ASK WHERE { ?x rdf:type ub:Person . ?x ub:memberOf <http://www.Department0.University0.edu> . }`
	no := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		ASK WHERE { ?x ub:headOf <http://www.University999.edu> . }`
	for _, strat := range []repro.Strategy{repro.GCov, repro.UCQ, repro.SCQ, repro.Saturation} {
		res, err := a.Query(yes, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Boolean() {
			t.Errorf("%s: expected true", strat)
		}
		res, err = a.Query(no, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Boolean() {
			t.Errorf("%s: expected false", strat)
		}
	}
}

func TestLoadNTriples(t *testing.T) {
	var buf bytes.Buffer
	w := ntriples.NewWriter(&buf)
	if err := w.WriteAll(lubm.Ontology()); err != nil {
		t.Fatal(err)
	}
	st := repro.NewStore()
	n, err := st.LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(lubm.Ontology()) {
		t.Errorf("loaded %d statements, want %d", n, len(lubm.Ontology()))
	}
}

// Turtle input must load and answer like the equivalent N-Triples.
func TestLoadTurtle(t *testing.T) {
	src := `
		@prefix ex: <http://example.org/> .
		ex:Book rdfs:subClassOf ex:Publication .
		ex:doi1 a ex:Book ;
		        ex:title "Game of Thrones" .
	`
	st := repro.NewStore()
	n, err := st.LoadTurtle(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d triples, want 3", n)
	}
	a := st.NewAnswerer(repro.Native, repro.Options{})
	res, err := a.Query(`SELECT ?x WHERE { ?x rdf:type <http://example.org/Publication> }`, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("got %d rows, want 1 (implicit typing through the loaded schema)", res.NumRows())
	}
}

// The six-index layout must answer identically to the default layout.
func TestWithAllIndexes(t *testing.T) {
	build := func(opts ...repro.StoreOption) *repro.Store {
		st := repro.NewStore(opts...)
		if err := st.AddAll(lubm.Ontology()); err != nil {
			t.Fatal(err)
		}
		lubm.Generate(1, 42, lubm.Tiny(), func(tr rdf.Triple) { st.MustAdd(tr) })
		st.Freeze()
		return st
	}
	def := build()
	all := build(repro.WithAllIndexes())
	q := lubm.Queries()[0].Text
	a1 := def.NewAnswerer(repro.Native, repro.Options{})
	a2 := all.NewAnswerer(repro.Native, repro.Options{})
	r1, err := a1.Query(q, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a2.Query(q, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(r1) != rowsKey(r2) {
		t.Error("index layouts disagree on answers")
	}
}

// Explain and ExplainPlan surface optimizer internals without evaluating.
func TestExplainFacade(t *testing.T) {
	st := lubmStore(t, 1)
	a := st.NewAnswerer(repro.PostgresLike, repro.Options{})
	q := lubm.Queries()[0].Text

	rep, err := a.Explain(q, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cover == nil || rep.TotalCQs == 0 || rep.EstimatedCost <= 0 {
		t.Errorf("Explain report incomplete: %+v", rep)
	}
	plan, err := a.ExplainPlan(q, repro.GCov)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"JUCQ plan", "arm 1", "estimated cost"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if plan, err := a.ExplainPlan(q, repro.Saturation); err != nil || !strings.Contains(plan, "saturation") {
		t.Errorf("saturation ExplainPlan = %q, %v", plan, err)
	}
}

// The saturation count must be positive on LUBM data (subclass typing,
// degreeFrom generalization, domain/range typing all fire).
func TestSaturationAddsImplicitTriples(t *testing.T) {
	st := lubmStore(t, 1)
	if st.NumImplicit() == 0 {
		t.Error("no implicit triples on LUBM data")
	}
	ratio := float64(st.NumImplicit()) / float64(st.NumTriples())
	if ratio < 0.2 {
		t.Errorf("implicit/explicit ratio %.2f suspiciously low for LUBM", ratio)
	}
	t.Logf("explicit %d, implicit %d (%.0f%%)", st.NumTriples(), st.NumImplicit(), 100*ratio)
}

// Engine profile failure surfaces through the facade with the typed error.
func TestProfileFailureSurfaces(t *testing.T) {
	st := lubmStore(t, 1)
	small := repro.Profile{Name: "tiny", MaxPlanLeaves: 10, ArmJoin: 0}
	a := st.NewAnswerer(small, repro.Options{})
	_, err := a.Query(lubm.Queries()[1].Text, repro.UCQ) // Q02: enormous UCQ
	if err == nil {
		t.Fatal("expected plan-complexity failure")
	}
}
