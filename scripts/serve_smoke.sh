#!/bin/sh
# serve_smoke.sh exercises the query service end to end: it lints the
# server and load-generator packages, builds the rdfserver and loadgen
# binaries, starts a server over a self-generated LUBM(1) dataset on an
# ephemeral port (parsed from the "rdfserver listening on" line), drives
# a short mixed read/write burst through real HTTP, asserts the burst
# answered queries (non-zero QPS, sane p99, zero failures — loadgen's
# -minqps/-maxp99 gates), and checks SIGTERM drains the server cleanly.
# scripts/check.sh runs this after the test suite.
set -eu

cd "$(dirname "$0")/.."

echo "==> lint: server, loadgen and their commands"
go run ./cmd/lint ./internal/server ./internal/loadgen ./cmd/rdfserver ./cmd/loadgen

echo "==> build rdfserver + loadgen"
bin="$(mktemp -d)"
srvpid=""
trap '[ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null; rm -rf "$bin"' EXIT
go build -o "$bin/rdfserver" ./cmd/rdfserver
go build -o "$bin/loadgen" ./cmd/loadgen

echo "==> start rdfserver (LUBM(1), ephemeral port)"
"$bin/rdfserver" -lubm 1 -addr 127.0.0.1:0 >"$bin/serve.out" 2>"$bin/serve.err" &
srvpid=$!
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^rdfserver listening on //p' "$bin/serve.out")"
    [ -n "$addr" ] && break
    if ! kill -0 "$srvpid" 2>/dev/null; then
        echo "serve_smoke: rdfserver exited before announcing its port" >&2
        cat "$bin/serve.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve_smoke: rdfserver never announced its port" >&2
    cat "$bin/serve.err" >&2
    exit 1
fi

echo "==> loadgen burst against http://$addr (2s, mixed read/write)"
"$bin/loadgen" -url "http://$addr" -duration 2s -concurrency 4 -mutators 1 \
    -minqps 1 -maxp99 30000

echo "==> SIGTERM drains the server"
kill -TERM "$srvpid"
wait "$srvpid"
srvpid=""

echo "serve smoke passed."
