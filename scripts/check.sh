#!/bin/sh
# check.sh runs the full verification gauntlet: build, go vet, the
# repository's own static-analysis suite (cmd/lint), the test suite, and
# the race detector. CI runs exactly this script; run it locally before
# sending changes.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/lint -jsonfile lint-findings.json ./..."
go run ./cmd/lint -jsonfile lint-findings.json ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> scripts/serve_smoke.sh (query service end-to-end)"
./scripts/serve_smoke.sh

echo "==> benchall -feedback (adaptive-cost convergence smoke)"
go run ./cmd/benchall -scale tiny -feedback

echo "==> benchall -factorized (factorized-answer equality smoke)"
go run ./cmd/benchall -scale tiny -factorized

echo "All checks passed."
