#!/bin/sh
# bench.sh runs the benchmark suite at the tiny scale and records the
# results as BENCH_<date>.json in the repository root: one entry per
# benchmark with ns/op and allocs/op, plus the runner's go version,
# GOMAXPROCS and CPU count (the parallel benchmarks only show their
# speedup on a multi-core runner; the metadata makes single-core numbers
# self-explaining). `make bench-json` and CI run exactly this script.
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-tiny}"
export REPRO_BENCH_SCALE

echo "==> go test -bench=$pattern -benchmem (scale: $REPRO_BENCH_SCALE)"
go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

go run ./cmd/benchjson -in "$raw" -out "$out"
echo "==> wrote $out"
