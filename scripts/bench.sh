#!/bin/sh
# bench.sh runs the benchmark suite at the tiny scale and records the
# results as BENCH_<date>.json in the repository root: one entry per
# benchmark with ns/op and allocs/op, plus the runner's go version,
# GOMAXPROCS and CPU count (the parallel benchmarks only show their
# speedup on a multi-core runner; the metadata makes single-core numbers
# self-explaining). The report also embeds the traced per-stage
# breakdown from `benchall -stagejson`, asserts that disabled
# tracing adds no allocations to the JUCQ hot path (tracealloc), and
# always includes the plan-cache cold/warm pair with its hit rate
# (cachedanswer) and the shared-scan on/off pair with its scan-cache hit
# rate (sharedscan), after running the strict shared-vs-baseline
# equality sweep, and the bulk-load scale sweep from `benchall
# -loadjson` (flat vs compressed load throughput and bytes/triple
# across REPRO_LOAD_SCALES), and the HTTP serve throughput sweep from
# `benchall -servejson` (an in-process rdfserver driven by the load
# generator: QPS and latency percentiles per concurrency level), and
# the adaptive-cost warm-up sweep from `benchall -feedbackjson` (the
# error trajectory of the feedback loop over repeated workload passes,
# gated on the estimation error shrinking at least 2x), and the
# factorized-answer sweep from `benchall -factjson` (bytes/answer under
# the factorized vs flat answer representations, gated on identical
# answers and at least one cross-product query compressing 2x).
# `make bench-json` and CI run exactly this script.
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
date="$(date -u +%Y-%m-%d)"
out="BENCH_${date}.json"
raw="$(mktemp)"
stages="$(mktemp)"
load="$(mktemp)"
serve="$(mktemp)"
fbk="$(mktemp)"
fact="$(mktemp)"
trap 'rm -f "$raw" "$stages" "$load" "$serve" "$fbk" "$fact"' EXIT

REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-tiny}"
export REPRO_BENCH_SCALE
REPRO_LOAD_SCALES="${REPRO_LOAD_SCALES:-tiny,small,medium}"

echo "==> go test -bench=$pattern -benchmem (scale: $REPRO_BENCH_SCALE)"
go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

# tracealloc: the `/off` and `/nil-span` variants of the trace-overhead
# benchmark must allocate identically — attaching no span may not cost
# the hot path anything. Re-run the benchmark on its own if a custom
# pattern excluded it from the main sweep.
echo "==> tracealloc: disabled tracing must add zero allocs/op"
if ! grep -q 'BenchmarkTraceOverhead/off' "$raw"; then
    go test -run '^$' -bench '^BenchmarkTraceOverhead$' -benchmem . | tee -a "$raw"
fi
awk '
    $1 ~ /^BenchmarkTraceOverhead\/off(-[0-9]+)?$/      { off = $(NF-1); seen_off = 1 }
    $1 ~ /^BenchmarkTraceOverhead\/nil-span(-[0-9]+)?$/ { nil = $(NF-1); seen_nil = 1 }
    END {
        if (!seen_off || !seen_nil) {
            print "tracealloc: FAIL — benchmark output missing off/nil-span lines"
            exit 1
        }
        d = nil - off; if (d < 0) d = -d
        tol = off * 0.01; if (tol < 2) tol = 2
        printf "tracealloc: off=%d allocs/op, nil-span=%d allocs/op (tolerance %.0f)\n", off, nil, tol
        if (d > tol) {
            print "tracealloc: FAIL — disabled tracing changes the allocation profile"
            exit 1
        }
    }' "$raw"

# cachedanswer: the plan-cache cold/warm pair (and its hit-rate metric)
# must be in every committed report. Re-run it on its own if a custom
# pattern excluded it from the main sweep.
if ! grep -q 'BenchmarkCachedAnswer/warm' "$raw"; then
    echo "==> cachedanswer: recording plan-cache cold/warm latency"
    go test -run '^$' -bench '^BenchmarkCachedAnswer$' -benchmem . | tee -a "$raw"
fi

# sharedscan: the shared-vs-baseline UCQ pair (with the scan-cache
# hit-rate metric) and the store/snapshot/range scan triple must be in
# every committed report. Re-run them on their own if a custom pattern
# excluded them from the main sweep.
if ! grep -q 'BenchmarkSharedScanUCQ' "$raw"; then
    echo "==> sharedscan: recording shared-scan on/off latency"
    go test -run '^$' -bench '^(BenchmarkSharedScanUCQ|BenchmarkSnapshotScan)$' -benchmem . | tee -a "$raw"
fi

# factorized: the factorized-vs-flat answer pair (with its bytes/answer
# and answers/sec metrics) must be in every committed report. Re-run it
# on its own if a custom pattern excluded it from the main sweep.
if ! grep -q 'BenchmarkFactorizedAnswers' "$raw"; then
    echo "==> factorized: recording factorized vs flat answer footprint"
    go test -run '^$' -bench '^BenchmarkFactorizedAnswers$' -benchmem . | tee -a "$raw"
fi

echo "==> benchall -sharedscan (strict shared-vs-baseline equality sweep)"
go run ./cmd/benchall -scale "$REPRO_BENCH_SCALE" -sharedscan

echo "==> benchall -stagejson (traced per-stage breakdown)"
go run ./cmd/benchall -scale "$REPRO_BENCH_SCALE" -stagejson "$stages"

echo "==> benchall -loadjson (bulk-load scale sweep: $REPRO_LOAD_SCALES)"
go run ./cmd/benchall -loadscales "$REPRO_LOAD_SCALES" -loadjson "$load"

echo "==> benchall -servejson (HTTP serve throughput sweep)"
go run ./cmd/benchall -scale "$REPRO_BENCH_SCALE" -servejson "$serve"

echo "==> benchall -feedbackjson (adaptive-cost warm-up sweep, gated at 2x)"
go run ./cmd/benchall -scale "$REPRO_BENCH_SCALE" -feedbackjson "$fbk"

echo "==> benchall -factjson (factorized-answer sweep, equality-gated)"
go run ./cmd/benchall -scale "$REPRO_BENCH_SCALE" -factjson "$fact"

go run ./cmd/benchjson -in "$raw" -stages "$stages" -load "$load" -serve "$serve" -feedback "$fbk" -factorized "$fact" -out "$out"
echo "==> wrote $out"
