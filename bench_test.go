// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus fine-grained
// benchmarks of the individual mechanisms (reformulation, cover search,
// join algorithms, saturation).
//
// The default scale keeps `go test -bench=.` fast; set
// REPRO_BENCH_SCALE=small or =medium to approach the paper's dataset
// sizes (cmd/benchall renders the same reports with readable output).
package repro_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/plancache"
	"repro/internal/reformulate"
	"repro/internal/saturate"
	"repro/internal/storage"
	"repro/internal/trace"
)

func benchScale() benchkit.Scale {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		return benchkit.ScaleByName(s)
	}
	return benchkit.ScaleTiny
}

func lubmDB(b *testing.B) *benchkit.Database {
	b.Helper()
	db, err := benchkit.BuildLUBM(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	return db
}

func dblpDB(b *testing.B) *benchkit.Database {
	b.Helper()
	db, err := benchkit.BuildDBLP(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	return db
}

// ---- Tables ----

func BenchmarkTable1_MotivatingQ1Stats(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.TripleCharacteristics(io.Discard, "Q01"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_Q1CoverSweep(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.CoverSweep(io.Discard, "Q01", engine.PostgresLike); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_MotivatingQ2Stats(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.TripleCharacteristics(io.Discard, "Q02"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_QueryCharacteristics(b *testing.B) {
	lubm := lubmDB(b)
	dblp := dblpDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lubm.QueryCharacteristics(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := dblp.QueryCharacteristics(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures ----

func BenchmarkFigure4_LUBM_Strategies(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.StrategyMatrix(io.Discard, engine.Profiles()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_LUBMLarge_Strategies(b *testing.B) {
	// The paper's Figure 5 is Figure 4 at 100M triples; here, the medium
	// scale. Opt in explicitly — at the default scale this benchmark
	// would just duplicate Figure 4.
	if os.Getenv("REPRO_BENCH_SCALE") != "medium" {
		b.Skip("set REPRO_BENCH_SCALE=medium for the large-scale figure (see cmd/benchall)")
	}
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.StrategyMatrix(io.Discard, engine.Profiles()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_DBLP_Strategies(b *testing.B) {
	db := dblpDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.StrategyMatrix(io.Discard, engine.Profiles()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7_LUBM_SearchEffort(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.SearchEffort(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8_DBLP_SearchEffort(b *testing.B) {
	db := dblpDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.SearchEffort(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_CostModelComparison(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.CostSourceComparison(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10_VsSaturation(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.SaturationComparison(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md A1–A5) ----

func BenchmarkAblation_IndexSet(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.AblationIndexSet(io.Discard, "Q01", "Q09"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_JoinOrdering(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.AblationJoinOrdering(io.Discard, "Q01", "Q09"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_GCovRedundancy(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.AblationGCovRedundancy(io.Discard, "Q01", "Q09", "Q23"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ArmJoin(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.AblationArmJoin(io.Discard, "Q05", "Q13"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FactorizedReformulation(b *testing.B) {
	db := lubmDB(b)
	for i := 0; i < b.N; i++ {
		if err := db.AblationFactorizedReformulation(io.Discard, "Q01", "Q09", "Q13"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Mechanism micro-benchmarks ----

// BenchmarkReformulate measures the CQ-to-UCQ reformulation itself (the
// factorized form, no materialization), on the two motivating queries.
func BenchmarkReformulate(b *testing.B) {
	db := lubmDB(b)
	for _, name := range []string{"Q01", "Q02"} {
		qi := db.QueryIndex(name)
		q := db.Encoded[qi]
		whole := cover.Query(q, cover.WholeQuery(len(q.Atoms))[0])
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ref, err := reformulate.Reformulate(whole, db.Closed)
				if err != nil {
					b.Fatal(err)
				}
				if ref.NumCQs() == 0 {
					b.Fatal("empty reformulation")
				}
			}
		})
	}
}

// BenchmarkCoverSearch measures the two search algorithms' optimization
// stage on a mid-size and a large query.
func BenchmarkCoverSearch(b *testing.B) {
	db := lubmDB(b)
	a := db.Answerer(engine.Native, core.Options{})
	for _, name := range []string{"Q01", "Q09", "Q28"} {
		qi := db.QueryIndex(name)
		for _, s := range []core.Strategy{core.ECov, core.GCov} {
			b.Run(name+"/"+string(s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := a.ChooseCover(db.Encoded[qi], s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStrategyEvaluation measures full answering per strategy on
// representative queries (the per-bar data of Figures 4–6).
func BenchmarkStrategyEvaluation(b *testing.B) {
	db := lubmDB(b)
	a := db.Answerer(engine.PostgresLike, core.Options{})
	for _, name := range []string{"Q01", "Q05", "Q09", "Q23"} {
		qi := db.QueryIndex(name)
		for _, s := range []core.Strategy{core.UCQ, core.SCQ, core.GCov, core.Saturation} {
			b.Run(name+"/"+string(s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out := db.Run(a, qi, s)
					if out.Failed() {
						b.Skipf("%s/%s fails on this profile (expected for large reformulations): %v", name, s, out.Err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelJUCQ measures evaluating the SCQ cover (a multi-arm
// JUCQ with a non-trivial union per arm) serially versus on all cores —
// the headline number of the parallel evaluation layer. Answers are
// byte-identical across worker counts, so the comparison is pure wall
// clock.
func BenchmarkParallelJUCQ(b *testing.B) {
	db := lubmDB(b)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		a := db.Answerer(engine.Native, core.Options{Parallelism: par})
		for _, name := range []string{"Q01", "Q09"} {
			qi := db.QueryIndex(name)
			b.Run(fmt.Sprintf("%s/p%d", name, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					out := db.Run(a, qi, core.SCQ)
					if out.Failed() {
						b.Fatal(out.Err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelCoverSearch measures the cover searches' optimization
// stage serially versus on all cores — the concurrent pricing pool over
// the shared fragment and cost memos.
func BenchmarkParallelCoverSearch(b *testing.B) {
	db := lubmDB(b)
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		a := db.Answerer(engine.Native, core.Options{Parallelism: par})
		for _, s := range []core.Strategy{core.ECov, core.GCov} {
			qi := db.QueryIndex("Q28")
			b.Run(fmt.Sprintf("%s/p%d", s, par), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := a.ChooseCover(db.Encoded[qi], s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTraceOverhead measures the disabled-tracing hot path on a
// JUCQ evaluation. The `/off` variant never touches the trace API; the
// `/nil-span` variant answers through WithTrace(nil), so every
// instrumentation site runs its nil-receiver check. scripts/bench.sh's
// tracealloc step asserts the two report identical allocs/op — the
// zero-cost-when-disabled claim of DESIGN.md's Observability section.
func BenchmarkTraceOverhead(b *testing.B) {
	db := lubmDB(b)
	qi := db.QueryIndex("Q09")
	off := db.Answerer(engine.Native, core.Options{})
	variants := []struct {
		name string
		a    *core.Answerer
	}{
		{"off", off},
		{"nil-span", off.WithTrace(nil)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := db.Run(v.a, qi, core.SCQ)
				if out.Failed() {
					b.Fatal(out.Err)
				}
			}
		})
	}
}

// BenchmarkCachedAnswer measures the plan cache on a cover-search-heavy
// query: `cold` answers through a fresh cache every iteration (one miss,
// install included), `warm` answers through a primed shared cache so every
// iteration skips the optimize and reformulate stages. The warm variant
// reports the cache's hit rate as a metric, which scripts/bench.sh embeds
// into the committed BENCH_*.json files.
func BenchmarkCachedAnswer(b *testing.B) {
	db := lubmDB(b)
	qi := db.QueryIndex("Q09")

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := db.Answerer(engine.Native, core.Options{PlanCache: plancache.New(0)})
			out := db.Run(a, qi, core.GCov)
			if out.Failed() {
				b.Fatal(out.Err)
			}
			if out.Report.Cached {
				b.Fatal("fresh cache reported a hit")
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		pc := plancache.New(0)
		a := db.Answerer(engine.Native, core.Options{PlanCache: pc})
		if out := db.Run(a, qi, core.GCov); out.Failed() {
			b.Fatal(out.Err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := db.Run(a, qi, core.GCov)
			if out.Failed() {
				b.Fatal(out.Err)
			}
			if !out.Report.Cached {
				b.Fatal("warm run missed the cache")
			}
		}
		b.ReportMetric(pc.Snapshot().HitRate(), "hit-rate")
	})
}

// BenchmarkSaturation measures building the saturated store, streamed
// straight off the raw store without materializing a triple slice.
func BenchmarkSaturation(b *testing.B) {
	db := lubmDB(b)
	n := db.Raw.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _ := saturate.StoreFrom(db.Raw.Each, db.Closed, storage.DefaultOrders...)
		if st.Len() < n {
			b.Fatal("saturation lost triples")
		}
	}
}

// BenchmarkSharedScanUCQ measures UCQ evaluation with the shared-scan
// layer (snapshot-pinned scans, pattern-scan memo, merged member scans)
// on versus off. The shared variant reports the layer's scan-cache hit
// rate, taken from one traced run outside the timed loop, as a metric —
// scripts/bench.sh embeds it into the committed BENCH_*.json files.
func BenchmarkSharedScanUCQ(b *testing.B) {
	db := lubmDB(b)
	for _, name := range []string{"Q01", "Q09"} {
		qi := db.QueryIndex(name)

		sp := trace.New("bench")
		traced := db.Answerer(engine.Native, core.Options{Parallelism: 1, Trace: sp})
		if out := db.Run(traced, qi, core.UCQ); out.Failed() {
			b.Fatal(out.Err)
		}
		sp.End()
		snap := sp.Registry().Snapshot()
		hits, misses := snap["scancache.hits"], snap["scancache.misses"]
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}

		variants := []struct {
			name string
			opts core.Options
		}{
			{"shared", core.Options{Parallelism: 1}},
			{"baseline", core.Options{Parallelism: 1, NoSharedScan: true}},
		}
		for _, v := range variants {
			a := db.Answerer(engine.Native, v.opts)
			shared := v.name == "shared"
			b.Run(name+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out := db.Run(a, qi, core.UCQ)
					if out.Failed() {
						b.Fatal(out.Err)
					}
				}
				if shared {
					b.ReportMetric(rate, "scan-hit-rate")
				}
			})
		}
	}
}

// BenchmarkFactorizedAnswers measures answering the cross-product
// queries of the factorized-answer experiment with factorization on
// and off. Each variant reports the stored footprint per logical
// answer (bytes/answer) and the logical answer rate (answers/sec) —
// scripts/bench.sh embeds both into the committed BENCH_*.json files
// alongside the equality-gated sweep from `benchall -factjson`.
func BenchmarkFactorizedAnswers(b *testing.B) {
	db := lubmDB(b)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"factorized", core.Options{Parallelism: 1}},
		{"flat", core.Options{Parallelism: 1, NoFactorized: true}},
	}
	for _, spec := range benchkit.FactorizedSpecs() {
		q, err := db.EncodeSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range variants {
			a := db.Answerer(engine.Native, v.opts)
			b.Run(spec.Name+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				rows := 0
				var stored int64
				for i := 0; i < b.N; i++ {
					ans, err := a.Answer(q, core.UCQ)
					if err != nil {
						b.Fatal(err)
					}
					rows = ans.Rel.Len()
					stored = ans.Rel.StoredBytes()
				}
				if rows > 0 && b.Elapsed() > 0 {
					b.ReportMetric(float64(stored)/float64(rows), "bytes/answer")
					b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "answers/sec")
				}
			})
		}
	}
}

// BenchmarkSnapshotScan isolates the storage layer: the locked
// Store.Scan versus the lock-free Snapshot.Scan versus the zero-copy
// Snapshot.Range on a bound-predicate pattern of the frozen LUBM store.
func BenchmarkSnapshotScan(b *testing.B) {
	db := lubmDB(b)
	st := db.Raw
	var p storage.Pattern
	st.Each(func(t storage.Triple) bool { p.P = t.P; return false })
	sn := st.Snapshot()
	count := 0
	sink := func(storage.Triple) bool { count++; return true }

	b.Run("store-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count = 0
			st.Scan(p, sink)
		}
	})
	b.Run("snapshot-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count = 0
			sn.Scan(p, sink)
		}
	})
	b.Run("snapshot-range", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts, ok := sn.Range(p)
			if !ok {
				b.Fatal("Range not exact on a frozen store")
			}
			count = len(ts)
		}
	})
	_ = count
}

// BenchmarkBulkLoad measures building the triple store from the raw
// LUBM stream: the flat serial baseline against the compressed
// block-columnar parallel sort-merge loader. The compressed variant
// reports its resident bytes/triple as a metric — scripts/bench.sh
// embeds it into the committed BENCH_*.json files alongside the
// cross-scale sweep from `benchall -loadjson`.
func BenchmarkBulkLoad(b *testing.B) {
	db := lubmDB(b)
	n := db.Raw.Len()
	variants := []struct {
		name     string
		compress storage.Compression
		par      int
	}{
		{"flat-serial", storage.CompressionOff, 1},
		{"compressed-serial", storage.CompressionOn, 1},
		{"compressed-parallel", storage.CompressionOn, runtime.GOMAXPROCS(0)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var st *storage.Store
			for i := 0; i < b.N; i++ {
				bl := storage.NewBuilder().WithCompression(v.compress).WithParallelism(v.par)
				db.Raw.Each(func(t storage.Triple) bool {
					bl.Add(t)
					return true
				})
				st = bl.Build()
				if st.Len() != n {
					b.Fatal("load lost triples")
				}
			}
			b.ReportMetric(st.Footprint().BytesPerTriple(), "bytes/triple")
		})
	}
}

// BenchmarkArmJoins measures the three arm-join algorithms on the SCQ
// reformulation of a join-heavy query — the isolated mechanism behind
// the MySQL-like profile's behaviour.
func BenchmarkArmJoins(b *testing.B) {
	db := lubmDB(b)
	qi := db.QueryIndex("Q22")
	for _, algo := range []engine.JoinAlgorithm{engine.HashJoin, engine.MergeJoin, engine.NestedLoopJoin} {
		prof := engine.Profile{Name: "bench-" + algo.String(), ArmJoin: algo}
		a := db.Answerer(prof, core.Options{})
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := db.Run(a, qi, core.SCQ)
				if out.Failed() {
					b.Fatal(out.Err)
				}
			}
		})
	}
}
