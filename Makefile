# Standard entry points; `make check` is the full gauntlet CI runs.

GO ?= go

.PHONY: build test race vet lint lint-fix-fixtures bench bench-json bench-scale bench-serve bench-feedback bench-factorized serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/lint -jsonfile lint-findings.json ./...

# lint-fix-fixtures regenerates the analyzer golden files after an
# intentional change to fixture code or diagnostic messages.
lint-fix-fixtures:
	$(GO) test ./internal/lint -run 'TestAnalyzerFixtures|TestIgnoreDirectives|TestStaleDirectives$$' -update

bench:
	$(GO) test -bench=. -benchmem

# bench-json runs the suite at the tiny scale and writes BENCH_<date>.json.
bench-json:
	./scripts/bench.sh

# bench-scale runs only the bulk-load scale sweep (flat vs compressed
# load throughput and bytes/triple) and prints the JSON on stdout.
bench-scale:
	$(GO) run ./cmd/benchall -loadscales tiny,small,medium -loadjson -

# bench-serve runs only the HTTP serve throughput sweep (an in-process
# rdfserver driven by the load generator) and prints the JSON on stdout.
bench-serve:
	$(GO) run ./cmd/benchall -scale tiny -servejson -

# bench-feedback runs only the adaptive-cost warm-up sweep (estimation
# error trajectory over repeated workload passes) and prints the JSON
# on stdout; it fails unless the error shrinks at least 2x.
bench-feedback:
	$(GO) run ./cmd/benchall -scale tiny -feedbackjson -

# bench-factorized runs only the factorized-answer sweep (bytes/answer
# under the factorized vs flat representations); it fails unless the
# expanded answers are identical to flat and one query compresses 2x.
bench-factorized:
	$(GO) run ./cmd/benchall -scale tiny -factorized

# serve-smoke exercises rdfserver + loadgen end to end on an ephemeral port.
serve-smoke:
	./scripts/serve_smoke.sh

check:
	./scripts/check.sh
