# Standard entry points; `make check` is the full gauntlet CI runs.

GO ?= go

.PHONY: build test race vet lint bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/lint ./...

bench:
	$(GO) test -bench=. -benchmem

check:
	./scripts/check.sh
